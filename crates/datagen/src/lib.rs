#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2x-datagen
//!
//! Schema-faithful synthetic statistical-KG generators for the RE²xOLAP
//! experiments. The paper evaluates on three real datasets (Table 3); the
//! originals are not redistributable, so each generator reproduces its
//! dataset's *schema shape exactly* — dimension count, hierarchy levels,
//! per-level member counts, measure — with the observation count as a free
//! scale parameter. ReOLAP's cost is shown (analytically and empirically in
//! the paper) to depend on schema complexity, not on observation count,
//! which is what makes this substitution sound.
//!
//! | generator | D | M | levels | members | hallmark |
//! |---|---|---|---|---|---|
//! | [`eurostat`] | 4 | 1 | 9 | 373 | shared country entities across origin/destination |
//! | [`production`] | 7 | 1 | 9 | 6444 | many flat dimensions, huge product classification |
//! | [`dbpedia`] | 5 | 1 | 23 | 87160 | M-to-N hierarchies, cross-dimension label overlap |
//!
//! [`running`] additionally builds the paper's hand-sized running example
//! (Figure 1), whose aggregates reproduce Table 2 exactly.
//!
//! [`common::example_workload`] derives the randomized example-tuple
//! workloads (input sizes 1–4, n tuples each) used by the Figure 7–9
//! experiments.

pub mod cache;
pub mod common;
pub mod dbpedia;
pub mod eurostat;
pub mod prng;
pub mod production;
pub mod running;

pub use cache::{load_or_generate, snapshot_key, snapshot_path, CacheMiss, CacheOutcome};
pub use common::{example_workload, example_workload_on, Dataset, ExpectedShape};
