//! Figure 9a: generation time of the three post-hoc refinement methods
//! (Top-k, Percentile, Similarity) over an executed disaggregated query.

use re2x_bench::env::{prepare, DatasetKind, Scales};
use re2x_bench::micro::Group;
use re2x_datagen::example_workload_on;
use re2x_sparql::{Solutions, SparqlEndpoint};
use re2xolap::refine::subset::DEFAULT_PERCENTILES;
use re2xolap::{refine, reolap, OlapQuery, ReolapConfig};

fn disaggregated_query(
    prepared: &re2x_bench::env::PreparedDataset,
) -> Option<(OlapQuery, Solutions)> {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 1, 3, 42);
    let config = ReolapConfig::default();
    for tuple in &workload {
        let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
        let Ok(outcome) = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config)
        else {
            continue;
        };
        let Some(query) = outcome.queries.into_iter().next() else {
            continue;
        };
        let Some(r) = refine::disaggregate::disaggregate(&prepared.report.schema, &query)
            .into_iter()
            .next()
        else {
            continue;
        };
        let solutions = prepared.endpoint.select(&r.query.query).ok()?;
        if !solutions.is_empty() {
            return Some((r.query, solutions));
        }
    }
    None
}

fn main() {
    let group = Group::new("fig9a_refinements");
    let scales = Scales::smoke();
    for kind in DatasetKind::ALL {
        let prepared = prepare(kind, &scales, 42);
        let Some((query, solutions)) = disaggregated_query(&prepared) else {
            continue;
        };
        let schema = &prepared.report.schema;
        let graph = prepared.endpoint.graph();
        group.bench(&format!("{}/topk", kind.name()), || {
            refine::subset::topk(schema, &query, &solutions, graph)
        });
        group.bench(&format!("{}/percentile", kind.name()), || {
            refine::subset::percentile(schema, &query, &solutions, graph, &DEFAULT_PERCENTILES)
        });
        group.bench(&format!("{}/similarity", kind.name()), || {
            refine::similar::similarity(schema, &query, &solutions, graph, 3)
        });
        // disaggregate generation itself (sub-100ms claim of §6.1)
        group.bench(&format!("{}/disaggregate", kind.name()), || {
            refine::disaggregate::disaggregate(schema, &query)
        });
    }
}
