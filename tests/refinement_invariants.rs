//! Cross-crate invariants of the ExRef refinement suite, checked over
//! randomized workloads on generated data (Problems 2a–2c of the paper).

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_datagen::example_workload_on;
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::refine::{disaggregate, similar, subset, RefinementKind};
use re2xolap::{reolap, OlapQuery, ReolapConfig};

struct Env {
    endpoint: LocalEndpoint,
    schema: re2x_cube::VirtualSchemaGraph,
    dataset: re2x_datagen::Dataset,
}

fn eurostat_env() -> Env {
    let mut dataset = re2x_datagen::eurostat::generate(1_500, 3);
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    Env {
        endpoint,
        schema,
        dataset,
    }
}

/// Synthesized queries across a randomized workload of sizes 1–2.
fn sample_queries(env: &Env, seed: u64) -> Vec<OlapQuery> {
    let mut out = Vec::new();
    for size in [1usize, 2] {
        let workload = example_workload_on(
            env.endpoint.graph(),
            &env.dataset,
            size,
            5,
            seed + size as u64,
        );
        for tuple in &workload {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            if let Ok(outcome) = reolap(&env.endpoint, &env.schema, &refs, &ReolapConfig::default())
            {
                out.extend(outcome.queries);
            }
        }
    }
    assert!(!out.is_empty(), "workload produced no queries");
    out
}

#[test]
fn disaggregate_never_repeats_or_rolls_up() {
    let env = eurostat_env();
    for query in sample_queries(&env, 11) {
        for refinement in disaggregate::disaggregate(&env.schema, &query) {
            let RefinementKind::Disaggregate { level } = refinement.kind else {
                panic!("wrong kind");
            };
            // Problem 2a: |D(T_r)| = |D(T)| + 1
            assert_eq!(
                refinement.query.group_columns.len(),
                query.group_columns.len() + 1
            );
            assert!(!query.groups_level(level), "level already grouped");
            let node = env.schema.level(level);
            for existing in &query.group_columns {
                assert!(
                    !env.schema.level(existing.level).is_ancestor_of(node),
                    "offered level {:?} aggregates {:?} at a coarser grain",
                    node.path,
                    env.schema.level(existing.level).path
                );
            }
            // the refined query still contains the example (2a containment)
            let sols = env.endpoint.select(&refinement.query.query).expect("runs");
            assert!(!refinement
                .query
                .matching_rows(&sols, env.endpoint.graph())
                .is_empty());
        }
    }
}

#[test]
fn subset_refinements_shrink_and_keep_the_example() {
    let env = eurostat_env();
    let graph = env.endpoint.graph();
    for query in sample_queries(&env, 23) {
        let original = env.endpoint.select(&query.query).expect("runs");
        for refinement in subset::topk(&env.schema, &query, &original, graph)
            .into_iter()
            .chain(subset::percentile(
                &env.schema,
                &query,
                &original,
                graph,
                &subset::DEFAULT_PERCENTILES,
            ))
        {
            let refined = env.endpoint.select(&refinement.query.query).expect("runs");
            // Problem 2b: same dimensions, smaller result, example kept
            assert_eq!(
                refinement.query.group_columns.len(),
                query.group_columns.len()
            );
            assert!(
                refined.len() < original.len() || original.len() <= 1,
                "{}: {} → {} rows",
                refinement.explanation,
                original.len(),
                refined.len()
            );
            assert!(
                !refinement.query.matching_rows(&refined, graph).is_empty(),
                "{} lost the example",
                refinement.explanation
            );
        }
    }
}

#[test]
fn topk_cardinality_matches_k() {
    let env = eurostat_env();
    let graph = env.endpoint.graph();
    for query in sample_queries(&env, 31) {
        let original = env.endpoint.select(&query.query).expect("runs");
        for refinement in subset::topk(&env.schema, &query, &original, graph) {
            let RefinementKind::TopK { k, .. } = &refinement.kind else {
                panic!("wrong kind");
            };
            let refined = env.endpoint.select(&refinement.query.query).expect("runs");
            // the threshold walk guarantees exactly k rows survive, modulo
            // ties at the boundary value (strict comparison can drop ties)
            assert!(
                refined.len() <= *k,
                "top-{k} returned {} rows for {}",
                refined.len(),
                refinement.query.sparql()
            );
            assert!(!refined.is_empty());
        }
    }
}

#[test]
fn similarity_restricts_to_k_plus_example_combinations() {
    let env = eurostat_env();
    let graph = env.endpoint.graph();
    for query in sample_queries(&env, 47).into_iter().take(4) {
        // add a context dimension first (similarity needs one for profiles)
        let Some(dis) = disaggregate::disaggregate(&env.schema, &query)
            .into_iter()
            .next()
        else {
            continue;
        };
        let disq = dis.query;
        let sols = env.endpoint.select(&disq.query).expect("runs");
        let k = 2;
        for refinement in similar::similarity(&env.schema, &disq, &sols, graph, k) {
            let RefinementKind::Similarity { k: kept, .. } = &refinement.kind else {
                panic!("wrong kind");
            };
            assert!(*kept <= k);
            let refined = env.endpoint.select(&refinement.query.query).expect("runs");
            // Problem 2c: same dimensionality, example kept
            assert_eq!(
                refinement.query.group_columns.len(),
                disq.group_columns.len()
            );
            assert!(!refinement.query.matching_rows(&refined, graph).is_empty());
            assert!(refined.len() <= sols.len());
        }
    }
}

#[test]
fn chained_refinements_compose() {
    // dis → topk → dis → percentile: queries of arbitrary complexity from
    // simple interactions ("Each operation can be applied multiple times
    // and in any order", §4.2)
    let env = eurostat_env();
    let graph = env.endpoint.graph();
    let query = sample_queries(&env, 53).remove(0);
    let q1 = disaggregate::disaggregate(&env.schema, &query)
        .into_iter()
        .next()
        .expect("dis available")
        .query;
    let s1 = env.endpoint.select(&q1.query).expect("runs");
    let Some(top) = subset::topk(&env.schema, &q1, &s1, graph)
        .into_iter()
        .next()
    else {
        return; // workload-dependent; nothing to chain
    };
    let q2 = top.query;
    let s2 = env.endpoint.select(&q2.query).expect("runs");
    if let Some(dis2) = disaggregate::disaggregate(&env.schema, &q2)
        .into_iter()
        .next()
    {
        let q3 = dis2.query;
        let s3 = env.endpoint.select(&q3.query).expect("runs");
        // drill-down resets measure thresholds computed at the coarser
        // granularity (they could exclude the example otherwise) …
        assert!(
            q3.query.having.is_none(),
            "stale HAVING reset by drill-down"
        );
        // … so the example is guaranteed to still be present
        assert!(!q3.matching_rows(&s3, graph).is_empty());
        if let Some(perc) =
            subset::percentile(&env.schema, &q3, &s3, graph, &subset::DEFAULT_PERCENTILES)
                .into_iter()
                .next()
        {
            let s4 = env.endpoint.select(&perc.query.query).expect("runs");
            assert!(!perc.query.matching_rows(&s4, graph).is_empty());
            // the final query is well-formed SPARQL that re-parses
            let text = perc.query.sparql();
            let reparsed = re2x_sparql::parse_query(&text).expect("round-trips");
            assert_eq!(reparsed, perc.query.query);
        }
    }
    let _ = s2;
}
