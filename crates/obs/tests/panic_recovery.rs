//! Regression test for poison tolerance: a closure that panics while the
//! tracer has spans open and metrics in flight must not take the
//! collector down with it. Every lock in `re2x-obs` goes through
//! `lock_or_recover`, so the event log, provenance, and metrics registry
//! keep serving after the panic.

use re2x_obs::{BusEvent, QueryKind, TraceEvent, Tracer};
use std::time::Duration;

#[test]
fn panicking_worker_leaves_the_registry_usable() {
    let tracer = Tracer::enabled();

    // A live subscriber rides along: the panic must not sever the bus.
    let stream = tracer.subscribe();

    // A worker panics mid-span, with a query already attributed and a
    // counter already bumped. The span guard unwinds (its Drop pushes the
    // Exit event under the events lock) while the panic is in flight.
    let result = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let _span = tracer.span("doomed");
                tracer.record_query(QueryKind::Select, Duration::from_millis(3));
                tracer.counter_add("worker.steps", 1);
                panic!("worker dies mid-span");
            })
            .join()
    });
    assert!(result.is_err(), "the worker must actually have panicked");

    // The collector still accepts new work…
    {
        let _span = tracer.span("after");
        tracer.record_query(QueryKind::Ask, Duration::from_millis(1));
        tracer.counter_add("worker.steps", 1);
    }

    // …and still serves everything recorded before AND after the panic.
    let events = tracer.events();
    let paths: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Enter { path, .. } => Some(path.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        paths.contains(&"doomed"),
        "pre-panic span survives: {paths:?}"
    );
    assert!(
        paths.contains(&"after"),
        "post-panic span recorded: {paths:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Exit { path, .. } if path == "doomed")),
        "the doomed span's guard closed it during unwinding"
    );

    let provenance = tracer.provenance();
    let doomed = provenance
        .iter()
        .find(|(path, _)| path == "doomed")
        .expect("pre-panic provenance survives");
    assert_eq!(doomed.1.selects, 1);
    let after = provenance
        .iter()
        .find(|(path, _)| path == "after")
        .expect("post-panic provenance recorded");
    assert_eq!(after.1.asks, 1);

    let metrics = tracer.metrics().expect("enabled tracer carries metrics");
    assert_eq!(
        metrics.counter("worker.steps"),
        2,
        "counter increments from before and after the panic both count"
    );
    assert!(
        !metrics.snapshot().counters.is_empty(),
        "snapshot still works after the panic"
    );

    // The subscriber saw events from before, during (the unwinding Exit),
    // and after the panic — the bus never went dark.
    let live = stream.poll();
    let live_paths: Vec<&str> = live
        .iter()
        .filter_map(|e| match e {
            BusEvent::Trace(TraceEvent::Enter { path, .. }) => Some(path.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        live_paths.contains(&"doomed"),
        "pre-panic fan-out: {live_paths:?}"
    );
    assert!(
        live_paths.contains(&"after"),
        "post-panic fan-out: {live_paths:?}"
    );
    assert!(
        live.iter().any(|e| matches!(
            e,
            BusEvent::Trace(TraceEvent::Exit { path, .. }) if path == "doomed"
        )),
        "the Exit pushed during unwinding reached the subscriber"
    );
    assert!(
        live.iter()
            .any(|e| matches!(e, BusEvent::Counter { name, .. } if name == "worker.steps")),
        "metric deltas fan out across the panic too"
    );
    assert_eq!(stream.dropped_events(), 0);
}
