//! The Production-shaped generator: macro-economic production accounts
//! (materials, energy, monetary production across countries and
//! industries).
//!
//! Reproduces the Table 3 row exactly: 7 dimensions, 1 measure, 9 levels,
//! 6 444 dimension members:
//!
//! * `area` — 43 countries (1 level),
//! * `industry` — 160 industries → 11 sectors,
//! * `product` — 6 153 products → 24 categories (product classifications
//!   dominate the member count, as in the real LCA data),
//! * `flow` — 5 flow types,
//! * `year` — 30 years,
//! * `scenario` — 8 scenarios,
//! * `unit` — 10 units.
//!
//! 43 + (160+11) + (6153+24) + 5 + 30 + 8 + 10 = 6 444.

use crate::common::{
    declare_predicate, link_rollup, make_members, pick_member, rng, Dataset, ExpectedShape,
};
use re2x_rdf::{vocab, Graph, Literal};

const NS: &str = "http://data.example.org/production/";

const AREAS: usize = 43;
const INDUSTRIES: usize = 160;
const SECTORS: usize = 11;
const PRODUCTS: usize = 6153;
const CATEGORIES: usize = 24;
const FLOWS: usize = 5;
const YEARS: usize = 30;
const FIRST_YEAR: usize = 1990;
const SCENARIOS: usize = 8;
const UNITS: usize = 10;

const AREA_NAMES: [&str; 8] = [
    "China",
    "United States",
    "Germany",
    "Japan",
    "India",
    "Brazil",
    "Denmark",
    "Norway",
];
const FLOW_NAMES: [&str; FLOWS] = ["Domestic", "Import", "Export", "Re-export", "Transit"];
const UNIT_NAMES: [&str; UNITS] = [
    "Tonnes",
    "Kilograms",
    "Megajoules",
    "Kilowatt Hours",
    "Euros",
    "Dollars",
    "Cubic Metres",
    "Litres",
    "Hectares",
    "Hours",
];

/// Generates the dataset. Member counts are exact whenever
/// `observations ≥ 6153` (the product pool).
pub fn generate(observations: usize, seed: u64) -> Dataset {
    let mut graph = Graph::new();
    let mut rng = rng(seed);

    let p_area = declare_predicate(&mut graph, NS, "area", "Reference Area");
    let p_industry = declare_predicate(&mut graph, NS, "industry", "Industry");
    let p_product = declare_predicate(&mut graph, NS, "product", "Product");
    let p_flow = declare_predicate(&mut graph, NS, "flow", "Flow Type");
    let p_year = declare_predicate(&mut graph, NS, "year", "Year");
    let p_scenario = declare_predicate(&mut graph, NS, "scenario", "Scenario");
    let p_unit = declare_predicate(&mut graph, NS, "unit", "Unit");
    let p_sector = declare_predicate(&mut graph, NS, "inSector", "In Sector");
    let p_category = declare_predicate(&mut graph, NS, "inCategory", "In Category");
    let p_measure = declare_predicate(&mut graph, NS, "amount", "Production Amount");

    let areas = make_members(&mut graph, NS, "area", AREAS, |i| {
        AREA_NAMES
            .get(i)
            .map_or_else(|| format!("Area {i}"), |n| (*n).to_owned())
    });
    let industries = make_members(&mut graph, NS, "industry", INDUSTRIES, |i| {
        format!("Industry {i}")
    });
    let sectors = make_members(&mut graph, NS, "sector", SECTORS, |i| format!("Sector {i}"));
    let products = make_members(&mut graph, NS, "product", PRODUCTS, |i| {
        format!("Product {i}")
    });
    let categories = make_members(&mut graph, NS, "category", CATEGORIES, |i| {
        format!("Category {i}")
    });
    let flows = make_members(&mut graph, NS, "flow", FLOWS, |i| FLOW_NAMES[i].to_owned());
    let years = make_members(&mut graph, NS, "year", YEARS, |i| {
        format!("{}", FIRST_YEAR + i)
    });
    let scenarios = make_members(&mut graph, NS, "scenario", SCENARIOS, |i| {
        format!("Scenario {i}")
    });
    let units = make_members(&mut graph, NS, "unit", UNITS, |i| UNIT_NAMES[i].to_owned());

    link_rollup(&mut graph, &industries, &sectors, &p_sector, None);
    link_rollup(&mut graph, &products, &categories, &p_category, None);

    let type_id = graph.intern_iri(vocab::rdf::TYPE);
    let class_iri = vocab::qb::OBSERVATION.to_owned();
    let class_id = graph.intern_iri(&class_iri);
    let dims = [
        (graph.intern_iri(&p_area), &areas),
        (graph.intern_iri(&p_industry), &industries),
        (graph.intern_iri(&p_product), &products),
        (graph.intern_iri(&p_flow), &flows),
        (graph.intern_iri(&p_year), &years),
        (graph.intern_iri(&p_scenario), &scenarios),
        (graph.intern_iri(&p_unit), &units),
    ];
    let p_measure_id = graph.intern_iri(&p_measure);
    for j in 0..observations {
        let obs = graph.intern_iri(format!("{NS}obs/{j}"));
        graph.insert_ids(obs, type_id, class_id);
        for (pred, pool) in dims {
            let member = pool.ids[pick_member(j, pool.len(), &mut rng)];
            graph.insert_ids(obs, pred, member);
        }
        let value = graph.intern_literal(Literal::double(rng.gen_range(0.1..100_000.0)));
        graph.insert_ids(obs, p_measure_id, value);
    }

    Dataset {
        graph,
        ..describe(observations)
    }
}

/// The dataset's metadata — everything [`generate`] produces except the
/// graph itself. Used to re-attach a snapshot-loaded graph without
/// regenerating the data (see [`crate::cache`]).
pub fn describe(observations: usize) -> Dataset {
    let pred = |local: &str| format!("{NS}{local}");
    Dataset {
        name: "production".to_owned(),
        graph: Graph::new(),
        observation_class: vocab::qb::OBSERVATION.to_owned(),
        observations,
        dimension_predicates: vec![
            pred("area"),
            pred("industry"),
            pred("product"),
            pred("flow"),
            pred("year"),
            pred("scenario"),
            pred("unit"),
        ],
        rollup_predicates: vec![pred("inSector"), pred("inCategory")],
        label_predicate: vocab::rdfs::LABEL.to_owned(),
        expected: ExpectedShape {
            dimensions: 7,
            measures: 1,
            levels: 9,
            members: 6444,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_arithmetic_matches_table3() {
        assert_eq!(
            AREAS
                + (INDUSTRIES + SECTORS)
                + (PRODUCTS + CATEGORIES)
                + FLOWS
                + YEARS
                + SCENARIOS
                + UNITS,
            6444
        );
    }

    #[test]
    fn observation_has_all_seven_dimensions() {
        let d = generate(50, 3);
        let g = &d.graph;
        let obs = g.iri_id(&format!("{NS}obs/7")).expect("obs");
        assert_eq!(d.dimension_predicates.len(), 7);
        for p in &d.dimension_predicates {
            let pid = g.iri_id(p).expect("pred");
            assert_eq!(g.objects(obs, pid).len(), 1, "{p}");
        }
    }

    #[test]
    fn rollups_connect_both_hierarchies() {
        let d = generate(20, 3);
        let g = &d.graph;
        let sector = g.iri_id(&format!("{NS}inSector")).expect("pred");
        assert_eq!(g.predicate_cardinality(sector), INDUSTRIES);
        let category = g.iri_id(&format!("{NS}inCategory")).expect("pred");
        assert_eq!(g.predicate_cardinality(category), PRODUCTS);
    }
}
