//! A small comment/string/raw-string-aware Rust tokenizer.
//!
//! The lexer is *not* a full Rust lexer: it only needs to be precise about
//! the places where naive text search goes wrong — string literals (escape
//! sequences, raw strings with arbitrary `#` fences, byte strings), char
//! literals vs. lifetimes, nested block comments — so that the rule engine
//! never mistakes `"panic!"` inside a string or a doc comment for a real
//! panic site. Everything else is classified coarsely (identifiers,
//! numbers, one-character punctuation).
//!
//! Tokens carry byte spans into the original source; the invariant tested
//! by the property suite is that tokens are in order, non-overlapping, and
//! that the bytes between consecutive tokens are pure whitespace — i.e.
//! spans round-trip the input exactly.

/// Coarse token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
    /// Numeric literal (lexed greedily; `1.0e-3` is one token).
    Num,
    /// `// …` comment (including doc comments), excluding the newline.
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
}

/// One token: kind plus byte span and 1-based line number of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'s> {
    src: &'s str,
    chars: std::str::CharIndices<'s>,
    line: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<(usize, char)> {
        self.chars.clone().next()
    }

    fn peek2(&self) -> Option<(usize, char)> {
        self.chars.clone().nth(1)
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, '\n')) = next {
            self.line += 1;
        }
        next
    }

    fn pos(&self) -> usize {
        self.peek().map_or(self.src.len(), |(i, _)| i)
    }
}

/// Tokenizes `source`. Never panics: malformed input (unterminated
/// strings or comments, stray bytes) degrades to coarser tokens that
/// still satisfy the span round-trip invariant.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cursor = Cursor {
        src: source,
        chars: source.char_indices(),
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some((start, c)) = cursor.peek() {
        let line = cursor.line;
        let kind = match c {
            c if c.is_whitespace() => {
                cursor.bump();
                continue;
            }
            '/' => match cursor.peek2().map(|(_, c)| c) {
                Some('/') => lex_line_comment(&mut cursor),
                Some('*') => lex_block_comment(&mut cursor),
                _ => lex_punct(&mut cursor),
            },
            '"' => lex_string(&mut cursor),
            '\'' => lex_char_or_lifetime(&mut cursor),
            'r' | 'b' => lex_maybe_prefixed(&mut cursor),
            c if is_ident_start(c) => lex_ident(&mut cursor),
            c if c.is_ascii_digit() => lex_number(&mut cursor),
            _ => lex_punct(&mut cursor),
        };
        tokens.push(Token {
            kind,
            start,
            end: cursor.pos(),
            line,
        });
    }
    tokens
}

fn lex_punct(cursor: &mut Cursor) -> TokenKind {
    cursor.bump();
    TokenKind::Punct
}

fn lex_ident(cursor: &mut Cursor) -> TokenKind {
    while let Some((_, c)) = cursor.peek() {
        if is_ident_continue(c) {
            cursor.bump();
        } else {
            break;
        }
    }
    TokenKind::Ident
}

fn lex_number(cursor: &mut Cursor) -> TokenKind {
    // Greedy: digits, `_`, `.` followed by a digit, exponents with an
    // optional sign, and alphabetic suffixes (`u64`, `f32`, hex digits).
    cursor.bump();
    while let Some((_, c)) = cursor.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            let prev_exp = matches!(c, 'e' | 'E');
            cursor.bump();
            if prev_exp {
                if let Some((_, sign)) = cursor.peek() {
                    if sign == '+' || sign == '-' {
                        cursor.bump();
                    }
                }
            }
        } else if c == '.' {
            match cursor.peek2() {
                Some((_, d)) if d.is_ascii_digit() => {
                    cursor.bump();
                    cursor.bump();
                }
                _ => break, // method call on a literal, range, …
            }
        } else {
            break;
        }
    }
    TokenKind::Num
}

fn lex_line_comment(cursor: &mut Cursor) -> TokenKind {
    while let Some((_, c)) = cursor.peek() {
        if c == '\n' {
            break;
        }
        cursor.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cursor: &mut Cursor) -> TokenKind {
    cursor.bump(); // '/'
    cursor.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cursor.peek(), cursor.peek2()) {
            (Some((_, '*')), Some((_, '/'))) => {
                cursor.bump();
                cursor.bump();
                depth -= 1;
            }
            (Some((_, '/')), Some((_, '*'))) => {
                cursor.bump();
                cursor.bump();
                depth += 1;
            }
            (Some(_), _) => {
                cursor.bump();
            }
            (None, _) => break, // unterminated: swallow to EOF
        }
    }
    TokenKind::BlockComment
}

/// Lexes a `"…"` string with escape sequences; the opening quote is the
/// next character.
fn lex_string(cursor: &mut Cursor) -> TokenKind {
    cursor.bump(); // opening '"'
    while let Some((_, c)) = cursor.bump() {
        match c {
            '\\' => {
                cursor.bump(); // the escaped character, e.g. `\"`
            }
            '"' => break,
            _ => {}
        }
    }
    TokenKind::Str
}

/// Lexes a raw string `r"…"` / `r#"…"#` with `hashes` fence characters;
/// the cursor stands on the opening quote.
fn lex_raw_string_body(cursor: &mut Cursor, hashes: usize) -> TokenKind {
    cursor.bump(); // opening '"'
    'scan: while let Some((_, c)) = cursor.bump() {
        if c == '"' {
            // need `hashes` consecutive '#' to close
            let mut lookahead = cursor.chars.clone();
            for _ in 0..hashes {
                match lookahead.next() {
                    Some((_, '#')) => {}
                    _ => continue 'scan,
                }
            }
            for _ in 0..hashes {
                cursor.bump();
            }
            break;
        }
    }
    TokenKind::Str
}

/// Entered on `r` or `b`: raw strings, byte strings, raw identifiers, or a
/// plain identifier starting with those letters.
fn lex_maybe_prefixed(cursor: &mut Cursor) -> TokenKind {
    let (_, first) = cursor.peek().unwrap_or((0, 'r'));
    // Clone-scan the prefix without consuming, then dispatch.
    let mut probe = cursor.chars.clone();
    probe.next(); // skip the r/b
    let mut prefix = String::from(first);
    let mut hashes = 0usize;
    loop {
        match probe.next() {
            Some((_, '#')) => {
                hashes += 1;
                if hashes > 255 {
                    break; // not a raw string fence; raw idents use 1 '#'
                }
            }
            Some((_, '"')) => {
                // r"…", br#"…"#, b"…"
                let is_raw = prefix.contains('r') || hashes > 0;
                cursor.bump(); // r or b
                if prefix.len() > 1 {
                    cursor.bump(); // the second prefix letter
                }
                for _ in 0..hashes {
                    cursor.bump();
                }
                return if is_raw {
                    lex_raw_string_body(cursor, hashes)
                } else {
                    lex_string(cursor)
                };
            }
            Some((_, '\'')) if prefix == "b" && hashes == 0 => {
                cursor.bump(); // b
                cursor.bump(); // opening '\''
                return lex_char_body(cursor);
            }
            Some((_, c)) if hashes == 0 && prefix.len() == 1 && (c == 'r' || c == 'b') => {
                // possible two-letter prefix: br / rb (only br is real Rust,
                // but the distinction doesn't matter here)
                prefix.push(c);
            }
            Some((_, c)) if hashes == 1 && is_ident_start(c) => {
                // raw identifier r#match
                cursor.bump(); // r
                cursor.bump(); // #
                return lex_ident(cursor);
            }
            _ => break,
        }
    }
    lex_ident(cursor)
}

/// Lexes the body of a char literal after the opening quote was consumed.
fn lex_char_body(cursor: &mut Cursor) -> TokenKind {
    if let Some((_, c)) = cursor.bump() {
        if c == '\\' {
            cursor.bump();
        }
    }
    // consume up to the closing quote (chars like '\u{1F600}' span bytes)
    while let Some((_, c)) = cursor.peek() {
        cursor.bump();
        if c == '\'' {
            break;
        }
    }
    TokenKind::Char
}

/// Entered on `'`: either a char literal or a lifetime/label.
fn lex_char_or_lifetime(cursor: &mut Cursor) -> TokenKind {
    // Lifetime: '<ident-start> not followed by a closing quote.
    if let (Some((_, c1)), c2) = (cursor.peek2(), cursor.chars.clone().nth(2).map(|(_, c)| c)) {
        if is_ident_start(c1) && c2 != Some('\'') {
            cursor.bump(); // '
            lex_ident(cursor);
            return TokenKind::Lifetime;
        }
    }
    cursor.bump(); // '
    lex_char_body(cursor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("self.state.lock()"),
            vec![
                (TokenKind::Ident, "self"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "state"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "lock"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn string_hides_panic() {
        let toks = kinds(r#"let m = "panic!(oops)";"#);
        assert!(toks.contains(&(TokenKind::Str, r#""panic!(oops)""#)));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "panic"));
    }

    #[test]
    fn raw_string_with_fences_and_quotes() {
        let src = r##"r#"contains "quotes" and \ "#"##;
        let toks = kinds(src);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, src);
    }

    #[test]
    fn byte_string_and_byte_char() {
        let toks = kinds(r##"b"bytes" b'\n' br#"raw"#"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Char);
        assert_eq!(toks[2].0, TokenKind::Str);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comment() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn doc_comment_hides_unwrap() {
        let toks = kinds("/// call .unwrap() freely here\nlet x = 1;");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#match");
        assert_eq!(toks, vec![(TokenKind::Ident, "r#match")]);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = tokenize("let s = \"oops");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::Str));
    }

    #[test]
    fn number_with_method_call() {
        let toks = kinds("1.max(2) 1.5e-3 0xff_u64");
        assert_eq!(toks[0], (TokenKind::Num, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Ident, "max"));
        assert!(toks.contains(&(TokenKind::Num, "1.5e-3")));
        assert!(toks.contains(&(TokenKind::Num, "0xff_u64")));
    }
}
