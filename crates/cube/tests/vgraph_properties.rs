//! Property-based tests of Virtual Schema Graph invariants: for arbitrary
//! randomly-shaped level trees, hierarchies partition the leaves, parents
//! are consistent with path prefixes, and stats add up.

use proptest::prelude::*;
use re2x_cube::{DimensionId, VirtualSchemaGraph};

/// A random schema description: per dimension, a list of levels given as
/// (parent index within the dimension or none, member count).
fn arb_schema() -> impl Strategy<Value = Vec<Vec<(Option<usize>, usize)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<Option<u8>>(), 1usize..500), 1..6),
        1..5,
    )
    .prop_map(|dims| {
        dims.into_iter()
            .map(|levels| {
                levels
                    .into_iter()
                    .enumerate()
                    .map(|(i, (parent, count))| {
                        // level 0 is the base; later levels attach to an
                        // arbitrary earlier level
                        let parent = if i == 0 {
                            None
                        } else {
                            Some(parent.map_or(0, |p| p as usize % i))
                        };
                        (parent, count)
                    })
                    .collect()
            })
            .collect()
    })
}

fn build(spec: &[Vec<(Option<usize>, usize)>]) -> VirtualSchemaGraph {
    let mut v = VirtualSchemaGraph::new("http://ex/Obs");
    for (d, levels) in spec.iter().enumerate() {
        let dim = v.add_dimension(format!("http://ex/d{d}"), format!("D{d}"));
        let mut paths: Vec<Vec<String>> = Vec::new();
        for (l, (parent, count)) in levels.iter().enumerate() {
            let mut path = match parent {
                None => vec![format!("http://ex/d{d}")],
                Some(p) => paths[*p].clone(),
            };
            if parent.is_some() {
                path.push(format!("http://ex/d{d}/up{l}"));
            }
            v.add_level(dim, path.clone(), *count, vec![], format!("L{d}_{l}"));
            paths.push(path);
        }
    }
    v
}

proptest! {
    #[test]
    fn hierarchy_and_parent_invariants(spec in arb_schema()) {
        let v = build(&spec);
        let total_levels: usize = spec.iter().map(Vec::len).sum();
        prop_assert_eq!(v.levels().len(), total_levels);
        prop_assert_eq!(v.dimensions().len(), spec.len());

        // parent relation ⇔ path-prefix relation
        for level in v.levels() {
            match v.parent(level.id) {
                None => prop_assert_eq!(level.depth(), 1),
                Some(parent) => {
                    let p = v.level(parent);
                    prop_assert_eq!(p.path.as_slice(), &level.path[..level.path.len() - 1]);
                    prop_assert!(p.is_ancestor_of(level));
                    prop_assert!(v.is_coarser(level.id, parent));
                    prop_assert!(v.children(parent).contains(&level.id));
                }
            }
        }

        // hierarchies: one per leaf, each a base→leaf parent chain, and
        // every level appears in at least one hierarchy
        let hierarchies = v.hierarchies();
        let leaves = v.levels().iter().filter(|l| v.children(l.id).is_empty()).count();
        prop_assert_eq!(hierarchies.len(), leaves);
        let mut covered = std::collections::HashSet::new();
        for h in &hierarchies {
            prop_assert!(v.parent(h[0]).is_none());
            for w in h.windows(2) {
                prop_assert_eq!(v.parent(w[1]), Some(w[0]));
            }
            covered.extend(h.iter().copied());
        }
        prop_assert_eq!(covered.len(), total_levels);

        // stats add up
        let stats = v.stats();
        prop_assert_eq!(stats.levels, total_levels);
        prop_assert_eq!(stats.hierarchies, leaves);
        let member_sum: usize = spec.iter().flatten().map(|(_, c)| c).sum();
        prop_assert_eq!(stats.members, member_sum);
        prop_assert!(stats.vgraph_bytes > 0);
    }

    #[test]
    fn level_lookup_by_path_is_total_and_injective(spec in arb_schema()) {
        let v = build(&spec);
        let mut seen = std::collections::HashSet::new();
        for level in v.levels() {
            let found = v.level_by_path(&level.path);
            prop_assert_eq!(found, Some(level.id));
            prop_assert!(seen.insert(level.path.clone()), "paths are unique");
        }
        prop_assert!(v.level_by_path(&["http://nowhere".to_owned()]).is_none());
    }

    #[test]
    fn dimension_partition(spec in arb_schema()) {
        let v = build(&spec);
        // every level belongs to exactly the dimension its path starts at
        for level in v.levels() {
            let dim = v.dimension(level.dimension);
            prop_assert_eq!(&level.path[0], &dim.predicate);
        }
        let per_dim: usize = (0..spec.len())
            .map(|d| v.levels_of(DimensionId(d as u32)).count())
            .sum();
        prop_assert_eq!(per_dim, v.levels().len());
    }
}
