//! Exploration-session transcripts: renders a [`Session`]'s history as a
//! self-contained Markdown report — the artifact an analyst (the paper's
//! journalist Alex) takes away from an exploration, with every step's
//! natural-language description, the reusable SPARQL, and a result
//! preview.

use crate::session::{PhaseCost, Session};
use re2x_obs::export::fmt_duration;
use re2x_rdf::Graph;
use std::fmt::Write as _;

/// Maximum result rows included per step.
const PREVIEW_ROWS: usize = 10;

fn phase_row(out: &mut String, name: &str, cost: &PhaseCost) {
    let _ = writeln!(
        out,
        "| {name} | {} | {} | {} | {} |",
        cost.invocations,
        fmt_duration(cost.wall),
        cost.endpoint_queries,
        fmt_duration(cost.endpoint_busy),
    );
}

/// Renders the session history as Markdown.
pub fn to_markdown(session: &Session, graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("# Exploration transcript\n\n");
    let metrics = session.metrics();
    let _ = writeln!(
        out,
        "{} interaction(s), {} exploration paths offered, {} tuples accessed.\n",
        metrics.interactions, metrics.paths_offered, metrics.tuples_accessible
    );
    if metrics.interactions > 0 {
        out.push_str("## Cost by phase\n\n");
        out.push_str("| Phase | Invocations | Wall time | Endpoint queries | Endpoint busy |\n");
        out.push_str("|---|---|---|---|---|\n");
        phase_row(&mut out, "Synthesis", &metrics.phases.synthesis);
        phase_row(&mut out, "Execution", &metrics.phases.execution);
        phase_row(&mut out, "Refinement", &metrics.phases.refinement);
        out.push('\n');
    }
    if session.history().is_empty() {
        out.push_str("_No query has been executed yet._\n");
        return out;
    }
    for (i, step) in session.history().iter().enumerate() {
        let _ = writeln!(out, "## Step {}: {}\n", i + 1, step.query.description);
        let examples: Vec<String> = step
            .query
            .bindings()
            .map(|b| format!("{} (`{}`)", b.label, b.member_iri))
            .collect();
        if !examples.is_empty() {
            let _ = writeln!(out, "Example anchors: {}\n", examples.join(", "));
        }
        out.push_str("```sparql\n");
        out.push_str(&step.query.sparql());
        out.push_str("\n```\n\n");
        let _ = writeln!(
            out,
            "Cost: {} wall, {} endpoint query(ies), {} endpoint busy.\n",
            fmt_duration(step.cost.wall),
            step.cost.endpoint_queries,
            fmt_duration(step.cost.endpoint_busy),
        );
        let total = step.solutions.len();
        let _ = writeln!(out, "{total} result row(s):\n");
        let mut preview = step.solutions.clone();
        preview.rows.truncate(PREVIEW_ROWS);
        out.push_str(&preview.to_labeled_table(graph));
        if total > PREVIEW_ROWS {
            let _ = writeln!(out, "… and {} more row(s).", total - PREVIEW_ROWS);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use crate::RefineOp;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_sparql::{LocalEndpoint, SparqlEndpoint};

    #[test]
    fn transcript_captures_every_step() {
        let mut dataset = re2x_datagen::running::generate();
        let graph = std::mem::take(&mut dataset.graph);
        let endpoint = LocalEndpoint::new(graph);
        let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap")
            .schema;
        let mut session = Session::new(&endpoint, &schema, SessionConfig::default());

        let empty = to_markdown(&session, endpoint.graph());
        assert!(empty.contains("No query has been executed"));
        assert!(
            !empty.contains("## Cost by phase"),
            "no cost table before any interaction"
        );
        assert!(empty.contains("0 interaction(s)"));

        let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("runs");
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        session
            .apply(dis.into_iter().next().expect("one"))
            .expect("runs");

        let md = to_markdown(&session, endpoint.graph());
        assert!(md.starts_with("# Exploration transcript"));
        assert!(md.contains("## Step 1:"));
        assert!(md.contains("## Step 2:"));
        assert!(md.contains("```sparql"));
        assert!(md.contains("GROUP BY"));
        assert!(md.contains("Example anchors: Germany"));
        assert!(md.contains("result row(s):"));
        // labels, not IRIs, in the preview tables
        assert!(md.contains("| Germany"));
        // cost accounting: a per-phase table plus one cost line per step
        assert!(md.contains("## Cost by phase"));
        assert!(md.contains("| Synthesis | 1 |"));
        assert!(md.contains("| Execution | 2 |"));
        assert!(md.contains("| Refinement | 1 |"));
        assert_eq!(md.matches("Cost: ").count(), 2, "one cost line per step");
        assert!(md.contains("endpoint query(ies)"));
    }

    #[test]
    fn long_results_are_truncated_with_a_note() {
        let mut dataset = re2x_datagen::eurostat::generate(500, 1);
        let graph = std::mem::take(&mut dataset.graph);
        let endpoint = LocalEndpoint::new(graph);
        let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap")
            .schema;
        let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("runs");
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        session
            .apply(dis.into_iter().next().expect("one"))
            .expect("runs");
        let md = to_markdown(&session, endpoint.graph());
        assert!(md.contains("more row(s)."), "{md}");
        // the preview is truncated to PREVIEW_ROWS: a step's table never has
        // more than PREVIEW_ROWS data rows
        let step2 = md.split("## Step 2:").nth(1).expect("step 2 rendered");
        let data_rows = step2
            .lines()
            .skip_while(|l| !l.starts_with("|---"))
            .skip(1)
            .take_while(|l| l.starts_with('|'))
            .count();
        assert!(data_rows <= PREVIEW_ROWS, "{data_rows} rows previewed");
    }
}
