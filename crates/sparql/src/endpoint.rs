//! The SPARQL endpoint seam.
//!
//! RE²xOLAP interacts with the triplestore *only* through a standard SPARQL
//! interface (the paper runs against Virtuoso). [`SparqlEndpoint`] is that
//! seam; [`LocalEndpoint`] implements it over an in-memory [`Graph`] and
//! additionally records per-query statistics and can inject an artificial
//! per-query latency, which the experiment harness uses to reproduce the
//! paper's observations about endpoint performance dominating bootstrap and
//! refinement costs.

use crate::ast::Query;
use crate::error::SparqlError;
use crate::eval::{evaluate, evaluate_ask};
use crate::parser::parse_query;
use crate::value::Solutions;
use parking_lot::Mutex;
use re2x_rdf::{Graph, TermId};
use std::time::{Duration, Instant};

/// Cumulative statistics of an endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EndpointStats {
    /// Number of `SELECT` queries answered.
    pub selects: u64,
    /// Number of `ASK` queries answered.
    pub asks: u64,
    /// Number of keyword-search calls answered.
    pub keyword_searches: u64,
    /// Total rows returned by `SELECT` queries.
    pub rows_returned: u64,
    /// Total evaluation time (including injected latency).
    pub busy: Duration,
}

impl EndpointStats {
    /// Total number of queries of any kind.
    pub fn total_queries(&self) -> u64 {
        self.selects + self.asks + self.keyword_searches
    }
}

/// A standard SPARQL query interface plus the full-text keyword lookup the
/// paper assumes of the triplestore.
pub trait SparqlEndpoint {
    /// Answers a `SELECT` query.
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError>;

    /// Answers an `ASK` query (any query form is tested for non-emptiness).
    fn ask(&self, query: &Query) -> Result<bool, SparqlError>;

    /// Full-text keyword resolution: literal terms matching the keyword.
    /// With `exact`, the whole normalized lexical form must match; without,
    /// all tokens of the keyword must occur in the literal.
    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId>;

    /// Term-resolution surface for interpreting the [`TermId`]s inside
    /// returned [`Solutions`]. (A remote implementation would resolve ids
    /// from its response bindings; the seam keeps ids for efficiency.)
    fn graph(&self) -> &Graph;

    /// Parses and answers a `SELECT` query given as text.
    fn select_text(&self, text: &str) -> Result<Solutions, SparqlError> {
        self.select(&parse_query(text)?)
    }

    /// Parses and answers an `ASK` query given as text.
    fn ask_text(&self, text: &str) -> Result<bool, SparqlError> {
        self.ask(&parse_query(text)?)
    }
}

/// [`SparqlEndpoint`] over an in-memory graph with statistics and optional
/// injected latency.
#[derive(Debug)]
pub struct LocalEndpoint {
    graph: Graph,
    stats: Mutex<EndpointStats>,
    latency: Option<Duration>,
}

impl LocalEndpoint {
    /// Wraps a graph.
    pub fn new(graph: Graph) -> Self {
        LocalEndpoint {
            graph,
            stats: Mutex::new(EndpointStats::default()),
            latency: None,
        }
    }

    /// Adds a fixed artificial latency to every query (simulating a slower
    /// or remote endpoint).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> EndpointStats {
        *self.stats.lock()
    }

    /// Resets the statistics (e.g. between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = EndpointStats::default();
    }

    /// Consumes the endpoint, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    fn pay_latency(&self) {
        if let Some(latency) = self.latency {
            std::thread::sleep(latency);
        }
    }
}

impl SparqlEndpoint for LocalEndpoint {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        let start = Instant::now();
        self.pay_latency();
        let result = evaluate(&self.graph, query);
        let mut stats = self.stats.lock();
        stats.selects += 1;
        stats.busy += start.elapsed();
        if let Ok(solutions) = &result {
            stats.rows_returned += solutions.len() as u64;
        }
        result
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        let start = Instant::now();
        self.pay_latency();
        let result = evaluate_ask(&self.graph, query);
        let mut stats = self.stats.lock();
        stats.asks += 1;
        stats.busy += start.elapsed();
        result
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        let start = Instant::now();
        self.pay_latency();
        let hits = if exact {
            self.graph.literals_matching_exact(keyword)
        } else {
            self.graph.literals_matching_keywords(keyword)
        };
        let mut stats = self.stats.lock();
        stats.keyword_searches += 1;
        stats.busy += start.elapsed();
        hits
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;

    fn endpoint() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany ; ex:value 5 .
            ex:o2 ex:dest ex:France ; ex:value 7 .
            ex:Germany ex:label "Germany" .
            ex:France ex:label "France" .
            "#,
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    #[test]
    fn select_and_stats() {
        let ep = endpoint();
        let sols = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert_eq!(sols.len(), 2);
        let stats = ep.stats();
        assert_eq!(stats.selects, 1);
        assert_eq!(stats.rows_returned, 2);
        assert_eq!(stats.total_queries(), 1);
    }

    #[test]
    fn ask_via_text() {
        let ep = endpoint();
        assert!(ep
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
            .expect("ask"));
        assert!(!ep
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Spain> }")
            .expect("ask"));
        assert_eq!(ep.stats().asks, 2);
    }

    #[test]
    fn keyword_search_modes() {
        let ep = endpoint();
        assert_eq!(ep.keyword_search("germany", true).len(), 1);
        assert_eq!(ep.keyword_search("germany", false).len(), 1);
        assert!(ep.keyword_search("ger", true).is_empty());
        assert_eq!(ep.stats().keyword_searches, 3);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let ep = endpoint();
        let _ = ep.keyword_search("germany", true);
        ep.reset_stats();
        assert_eq!(ep.stats(), EndpointStats::default());
    }

    #[test]
    fn latency_is_accounted_in_busy_time() {
        let ep = endpoint().with_latency(Duration::from_millis(5));
        let _ = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert!(ep.stats().busy >= Duration::from_millis(5));
    }
}
