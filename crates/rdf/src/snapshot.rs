//! Persistent dictionary-encoded snapshots of a [`Graph`].
//!
//! A snapshot is the natural on-disk serialization of the store's interned,
//! sorted indexes: the term dictionary in interning order (so every
//! [`TermId`] survives a round-trip unchanged), each of the three two-level
//! indexes in its frozen compressed-sparse-row form (see
//! `crate::graph::FrozenIndex`), the incrementally maintained
//! [`PredicateStats`], and the exact membership of the full-text index.
//! Loading is a handful of large sequential array reads — no string
//! re-parsing, no per-triple hash-map or `Vec` allocation, no sorting: the
//! writer already laid every index out in exactly the form the evaluator
//! reads. That is what makes a snapshot load several times faster than
//! regenerating the dataset it caches.
//!
//! ## File layout (version 2, all integers little-endian)
//!
//! ```text
//! magic      8 bytes  "RE2XSNAP"
//! version    u32
//! key        u32 length + UTF-8 bytes   (dataset identity, checked on load)
//! counts     4 × u64: terms, triples, predicates, indexed literals
//! section ×6          dictionary, spo, pos, osp, stats, text membership
//!   length   u64      payload bytes
//!   payload  …
//!   checksum u64      FNV-1a over 8-byte LE words of the payload
//!                     (zero-padded tail, length mixed into the seed)
//! ```
//!
//! Each index section holds one frozen index as five flat `u32` arrays:
//!
//! ```text
//! counts     3 × u64: outer keys, inner keys, postings
//! outer ids  u32 × outer   term ids, strictly ascending
//! outer ends u32 × outer   exclusive end offsets into the inner arrays
//! inner ids  u32 × inner   term ids, strictly ascending per outer run
//! inner ends u32 × inner   exclusive end offsets into the postings
//! postings   u32 × post    term ids, strictly ascending per inner run
//! ```
//!
//! Every decode error is a typed [`RdfError`] — truncated files, foreign
//! magic, unsupported versions, checksum mismatches and internally
//! inconsistent payloads all fail loudly without panicking, so a corrupt
//! cache entry degrades to regeneration instead of poisoning the process.
//! Each index section is re-validated structurally on load (ascending
//! runs, exact offsets, in-range ids, posting count equal to the header's
//! triple count); agreement *between* the three indexes is a writer
//! invariant guarded by the checksums, the round-trip property suite and
//! the digest comparison in the scale experiment.

use crate::error::RdfError;
use crate::graph::{FrozenIndex, Graph, PredicateStats};
use crate::hash::FxHashMap;
use crate::interner::{Interner, TermId};
use crate::partition::Partitioned;
use crate::term::{Literal, Term};
use crate::text::TextIndex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Leading bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RE2XSNAP";
/// Current format version; bump on any incompatible layout change.
/// Version 2 replaced the delta-varint triple stream with the three frozen
/// index sections, trading ~2× file size for a zero-allocation load path.
pub const SNAPSHOT_VERSION: u32 = 2;

const SECTION_DICTIONARY: &str = "dictionary";
const SECTION_SPO: &str = "spo";
const SECTION_POS: &str = "pos";
const SECTION_OSP: &str = "osp";
const SECTION_STATS: &str = "stats";
const SECTION_TEXT: &str = "text";

// Term tags in the dictionary section.
const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_LITERAL_SIMPLE: u8 = 2;
const TAG_LITERAL_TYPED: u8 = 3;
const TAG_LITERAL_TAGGED: u8 = 4;

/// Section checksum: FNV-1a folded over 8-byte little-endian words (the
/// tail zero-padded, the length mixed into the seed so padding cannot be
/// confused with content). Word-at-a-time keeps verification ~8× faster
/// than the byte-serial fold at the same error-detection strength for the
/// random corruption this guards against — on a 90M-triple snapshot the
/// checksums cover gigabytes.
fn section_checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = [0u8; 8];
        word[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fnv1a_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn io_err(path: &Path, e: &std::io::Error) -> RdfError {
    RdfError::Io(format!("{}: {e}", path.display()))
}

// ---- decoding ------------------------------------------------------------

/// Bounds-checked cursor over a snapshot buffer. Every read reports the
/// section it happened in so truncation errors say *where* the file ended.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
        }
    }

    fn truncated(&self) -> RdfError {
        RdfError::SnapshotTruncated {
            section: self.section.to_owned(),
            offset: self.pos,
        }
    }

    fn corrupt(&self, message: impl Into<String>) -> RdfError {
        RdfError::SnapshotCorrupt {
            section: self.section.to_owned(),
            message: message.into(),
        }
    }

    fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RdfError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, RdfError> {
        let byte = *self.buf.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(byte)
    }

    fn u32_le(&mut self) -> Result<u32, RdfError> {
        let raw = self.take(4)?;
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(raw);
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64_le(&mut self) -> Result<u64, RdfError> {
        let raw = self.take(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(u64::from_le_bytes(bytes))
    }

    fn varint(&mut self) -> Result<u64, RdfError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(self.corrupt("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<&'a str, RdfError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| self.corrupt("string length overflow"))?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    fn term_id(&mut self, raw: u64, term_count: usize) -> Result<TermId, RdfError> {
        let id = u32::try_from(raw).map_err(|_| self.corrupt("term id overflows u32"))?;
        if (id as usize) >= term_count {
            return Err(self.corrupt(format!("term id {id} out of range ({term_count} terms)")));
        }
        Ok(TermId(id))
    }
}

// ---- header --------------------------------------------------------------

struct Header {
    key: String,
    term_count: usize,
    triple_count: usize,
    pred_count: usize,
    text_count: usize,
    /// Offset of the first section frame.
    body_start: usize,
}

fn parse_header(buf: &[u8]) -> Result<Header, RdfError> {
    let mut r = Reader::new(buf, "header");
    let magic = r.take(8)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(RdfError::SnapshotBadMagic);
    }
    let version = r.u32_le()?;
    if version != SNAPSHOT_VERSION {
        return Err(RdfError::SnapshotVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let key_len = r.u32_le()? as usize;
    let key_bytes = r.take(key_len)?;
    let key = std::str::from_utf8(key_bytes)
        .map_err(|_| r.corrupt("snapshot key is not valid UTF-8"))?
        .to_owned();
    let counts: [u64; 4] = [r.u64_le()?, r.u64_le()?, r.u64_le()?, r.u64_le()?];
    let as_usize = |v: u64| usize::try_from(v).map_err(|_| r.corrupt("count overflows usize"));
    Ok(Header {
        key,
        term_count: as_usize(counts[0])?,
        triple_count: as_usize(counts[1])?,
        pred_count: as_usize(counts[2])?,
        text_count: as_usize(counts[3])?,
        body_start: r.pos,
    })
}

/// Reads just the header of a snapshot file and returns its embedded key —
/// how the cache layer decides whether an on-disk artifact matches the
/// dataset it is about to serve, without paying for a full load.
pub fn peek_snapshot_key(path: &Path) -> Result<String, RdfError> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path).map_err(|e| io_err(path, &e))?;
    // magic + version + key length + longest key we accept
    let mut buf = vec![0u8; 16 + 4096];
    let mut filled = 0usize;
    loop {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if filled == buf.len() {
                    break;
                }
            }
            Err(e) => return Err(io_err(path, &e)),
        }
    }
    buf.truncate(filled);
    let mut r = Reader::new(&buf, "header");
    let magic = r.take(8)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(RdfError::SnapshotBadMagic);
    }
    let version = r.u32_le()?;
    if version != SNAPSHOT_VERSION {
        return Err(RdfError::SnapshotVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let key_len = r.u32_le()? as usize;
    let key_bytes = r.take(key_len)?;
    std::str::from_utf8(key_bytes)
        .map(str::to_owned)
        .map_err(|_| r.corrupt("snapshot key is not valid UTF-8"))
}

// ---- encoding ------------------------------------------------------------

fn encode_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            push_str(out, iri);
        }
        Term::BlankNode(label) => {
            out.push(TAG_BLANK);
            push_str(out, label);
        }
        Term::Literal(lit) => match (lit.datatype(), lit.language()) {
            (Some(dt), _) => {
                out.push(TAG_LITERAL_TYPED);
                push_str(out, lit.lexical());
                push_str(out, dt);
            }
            (None, Some(lang)) => {
                out.push(TAG_LITERAL_TAGGED);
                push_str(out, lit.lexical());
                push_str(out, lang);
            }
            (None, None) => {
                out.push(TAG_LITERAL_SIMPLE);
                push_str(out, lit.lexical());
            }
        },
    }
}

fn decode_term(r: &mut Reader<'_>) -> Result<Term, RdfError> {
    let tag = r.u8()?;
    match tag {
        TAG_IRI => Ok(Term::iri(r.string()?)),
        TAG_BLANK => Ok(Term::blank(r.string()?)),
        TAG_LITERAL_SIMPLE => Ok(Term::Literal(Literal::simple(r.string()?))),
        TAG_LITERAL_TYPED => {
            let lexical = r.string()?.to_owned();
            let datatype = r.string()?;
            Ok(Term::Literal(Literal::typed(lexical, datatype)))
        }
        TAG_LITERAL_TAGGED => {
            let lexical = r.string()?.to_owned();
            let language = r.string()?;
            Ok(Term::Literal(Literal::tagged(lexical, language)))
        }
        other => Err(r.corrupt(format!("unknown term tag {other}"))),
    }
}

/// Serializes one frozen index as the fixed-width array layout above.
fn encode_index(index: &FrozenIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        24 + 4 * (2 * index.outer_ids.len() + 2 * index.inner_ids.len() + index.postings.len()),
    );
    for count in [
        index.outer_ids.len(),
        index.inner_ids.len(),
        index.postings.len(),
    ] {
        out.extend_from_slice(&(count as u64).to_le_bytes());
    }
    for id in &index.outer_ids {
        out.extend_from_slice(&id.0.to_le_bytes());
    }
    for end in &index.outer_ends {
        out.extend_from_slice(&end.to_le_bytes());
    }
    for id in &index.inner_ids {
        out.extend_from_slice(&id.0.to_le_bytes());
    }
    for end in &index.inner_ends {
        out.extend_from_slice(&end.to_le_bytes());
    }
    for id in &index.postings {
        out.extend_from_slice(&id.0.to_le_bytes());
    }
    out
}

/// `true` if every element is strictly larger than its predecessor.
fn strictly_ascending(ids: &[TermId]) -> bool {
    ids.windows(2).all(|w| w[0] < w[1])
}

/// Reads `n` term ids, each validated against the dictionary size.
fn read_id_array(r: &mut Reader<'_>, n: usize, term_count: usize) -> Result<Vec<TermId>, RdfError> {
    let raw = r.take(n.checked_mul(4).ok_or_else(|| r.truncated())?)?;
    let mut out = Vec::with_capacity(n);
    for chunk in raw.chunks_exact(4) {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(chunk);
        let id = u32::from_le_bytes(bytes);
        if (id as usize) >= term_count {
            return Err(r.corrupt(format!("term id {id} out of range ({term_count} terms)")));
        }
        out.push(TermId(id));
    }
    Ok(out)
}

/// Reads `n` exclusive end offsets: strictly increasing from an implicit 0
/// (so every run is non-empty), the last equal to `total`.
fn read_end_array(r: &mut Reader<'_>, n: usize, total: usize) -> Result<Vec<u32>, RdfError> {
    let raw = r.take(n.checked_mul(4).ok_or_else(|| r.truncated())?)?;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u32;
    for chunk in raw.chunks_exact(4) {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(chunk);
        let end = u32::from_le_bytes(bytes);
        if end <= prev && !(out.is_empty() && end == 0 && total == 0) {
            return Err(r.corrupt("offsets are not strictly increasing"));
        }
        prev = end;
        out.push(end);
    }
    let last = out.last().map_or(0, |&e| e as usize);
    if last != total {
        return Err(r.corrupt(format!("offsets end at {last}, expected {total}")));
    }
    Ok(out)
}

/// Reads and fully validates one frozen-index section.
fn read_index_section(
    body: &mut Reader<'_>,
    section: &'static str,
    term_count: usize,
    triple_count: usize,
) -> Result<FrozenIndex, RdfError> {
    let mut r = read_section(body, section)?;
    let mut counts = [0usize; 3];
    for slot in &mut counts {
        let raw = r.u64_le()?;
        *slot = u32::try_from(raw)
            .ok()
            .map(|v| v as usize)
            .ok_or_else(|| r.corrupt("index count overflows u32"))?;
    }
    let [outer_count, inner_count, posting_count] = counts;
    // Exact payload size before any array allocation: a corrupt count can
    // never force a huge speculative allocation.
    let expected = [
        outer_count,
        outer_count,
        inner_count,
        inner_count,
        posting_count,
    ]
    .iter()
    .try_fold(24usize, |acc, &n| {
        n.checked_mul(4).and_then(|b| acc.checked_add(b))
    })
    .ok_or_else(|| r.corrupt("index counts overflow"))?;
    if r.buf.len() != expected {
        return Err(r.corrupt(format!(
            "index section holds {} bytes, its counts promise {expected}",
            r.buf.len()
        )));
    }
    if posting_count != triple_count {
        return Err(r.corrupt(format!(
            "index covers {posting_count} postings, header promised {triple_count} triples"
        )));
    }
    let outer_ids = read_id_array(&mut r, outer_count, term_count)?;
    let outer_ends = read_end_array(&mut r, outer_count, inner_count)?;
    let inner_ids = read_id_array(&mut r, inner_count, term_count)?;
    let inner_ends = read_end_array(&mut r, inner_count, posting_count)?;
    let postings = read_id_array(&mut r, posting_count, term_count)?;
    if !strictly_ascending(&outer_ids) {
        return Err(r.corrupt("outer keys are not strictly increasing"));
    }
    let mut start = 0usize;
    for &end in &outer_ends {
        if !strictly_ascending(&inner_ids[start..end as usize]) {
            return Err(r.corrupt("inner keys are not strictly increasing within a run"));
        }
        start = end as usize;
    }
    let mut start = 0usize;
    for &end in &inner_ends {
        if !strictly_ascending(&postings[start..end as usize]) {
            return Err(r.corrupt("postings are not strictly increasing within a run"));
        }
        start = end as usize;
    }
    Ok(FrozenIndex {
        outer_ids,
        outer_ends,
        inner_ids,
        inner_ends,
        postings,
    })
}

/// Appends one framed section (length, payload, FNV-1a checksum).
fn push_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&section_checksum(payload).to_le_bytes());
}

/// Reads one framed section, verifying its checksum.
fn read_section<'a>(r: &mut Reader<'a>, section: &'static str) -> Result<Reader<'a>, RdfError> {
    r.section = section;
    let len = r.u64_le()?;
    let len = usize::try_from(len).map_err(|_| r.corrupt("section length overflows usize"))?;
    let payload = r.take(len)?;
    let stored = r.u64_le()?;
    if section_checksum(payload) != stored {
        return Err(RdfError::SnapshotChecksum {
            section: section.to_owned(),
        });
    }
    Ok(Reader::new(payload, section))
}

impl Graph {
    /// Writes the graph to `path` as a versioned binary snapshot stamped
    /// with `key` (the dataset identity the loader verifies).
    ///
    /// The write is atomic-ish: the file is assembled in memory and written
    /// in one call, so a crash mid-write leaves a truncated file the loader
    /// rejects with a typed error rather than a silently short graph.
    pub fn write_snapshot(&self, path: &Path, key: &str) -> Result<(), RdfError> {
        if u32::try_from(self.len()).is_err() {
            return Err(RdfError::Io(format!(
                "graph holds {} triples; snapshot offsets are u32",
                self.len()
            )));
        }
        // dictionary: terms in interning order, so ids round-trip.
        let mut dictionary = Vec::with_capacity(self.interner.len() * 24);
        for (_, term) in self.interner.iter() {
            encode_term(&mut dictionary, term);
        }

        // the three indexes in frozen form — borrowed as-is from a
        // snapshot-loaded graph, built by one sorting sweep over the nested
        // maps of a dynamically grown one.
        let spo = encode_index(&self.spo.freeze_view());
        let pos = encode_index(&self.pos.freeze_view());
        let osp = encode_index(&self.osp.freeze_view());

        // predicate statistics, sorted by predicate id.
        let mut stats = Vec::with_capacity(self.pred_stats.len() * 8);
        let mut preds: Vec<TermId> = self.pred_stats.keys().copied().collect();
        preds.sort_unstable();
        let mut prev_p = 0u64;
        for p in &preds {
            let st = self.pred_stats.get(p).copied().unwrap_or_default();
            push_varint(&mut stats, u64::from(p.0) - prev_p);
            prev_p = u64::from(p.0);
            push_varint(&mut stats, st.triples as u64);
            push_varint(&mut stats, st.distinct_subjects as u64);
            push_varint(&mut stats, st.distinct_objects as u64);
        }

        // text-index membership: the literals *currently* indexed — not all
        // literals, because removal orphans literals out of the index and a
        // snapshot must preserve that exact state.
        let mut indexed: Vec<TermId> = Vec::with_capacity(self.text.len());
        for (id, term) in self.interner.iter() {
            if let Some(lit) = term.as_literal() {
                if self.text.is_indexed(id, lit.lexical()) {
                    indexed.push(id);
                }
            }
        }
        let mut text = Vec::with_capacity(indexed.len() * 2);
        let mut prev_t = 0u64;
        for id in &indexed {
            push_varint(&mut text, u64::from(id.0) - prev_t);
            prev_t = u64::from(id.0);
        }

        let mut out = Vec::with_capacity(
            32 + key.len()
                + dictionary.len()
                + spo.len()
                + pos.len()
                + osp.len()
                + stats.len()
                + text.len()
                + 96,
        );
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        for count in [
            self.interner.len(),
            self.len(),
            self.pred_stats.len(),
            indexed.len(),
        ] {
            out.extend_from_slice(&(count as u64).to_le_bytes());
        }
        push_section(&mut out, &dictionary);
        push_section(&mut out, &spo);
        push_section(&mut out, &pos);
        push_section(&mut out, &osp);
        push_section(&mut out, &stats);
        push_section(&mut out, &text);

        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(parent, &e))?;
            }
        }
        std::fs::write(path, &out).map_err(|e| io_err(path, &e))
    }

    /// Loads a snapshot written by [`Graph::write_snapshot`].
    ///
    /// With `expected_key = Some(k)`, a snapshot stamped with a different
    /// key fails with [`RdfError::SnapshotKeyMismatch`] — stale cache
    /// entries are rejected, never trusted. The three indexes come back in
    /// their frozen form straight from the section arrays; the only
    /// per-term work in the whole load is decoding the dictionary and
    /// re-hashing each term once for the interner's reverse map.
    pub fn load_snapshot(path: &Path, expected_key: Option<&str>) -> Result<Graph, RdfError> {
        let buf = std::fs::read(path).map_err(|e| io_err(path, &e))?;
        let header = parse_header(&buf)?;
        if let Some(expected) = expected_key {
            if header.key != expected {
                return Err(RdfError::SnapshotKeyMismatch {
                    expected: expected.to_owned(),
                    found: header.key,
                });
            }
        }
        let mut body = Reader::new(&buf, "header");
        body.pos = header.body_start;

        // dictionary → interner.
        let mut dict = read_section(&mut body, SECTION_DICTIONARY)?;
        // Capacity from the payload, not the header count, so a corrupt
        // count cannot force a huge allocation before validation.
        let mut terms: Vec<Term> = Vec::with_capacity(header.term_count.min(dict.buf.len()));
        while !dict.is_done() {
            terms.push(decode_term(&mut dict)?);
        }
        if terms.len() != header.term_count {
            return Err(dict.corrupt(format!(
                "dictionary holds {} terms, header promised {}",
                terms.len(),
                header.term_count
            )));
        }
        let interner = Interner::from_terms(terms).ok_or_else(|| RdfError::SnapshotCorrupt {
            section: SECTION_DICTIONARY.to_owned(),
            message: "duplicate term in dictionary".to_owned(),
        })?;
        let term_count = interner.len();

        // the three frozen indexes, each validated independently.
        let spo = read_index_section(&mut body, SECTION_SPO, term_count, header.triple_count)?;
        let pos = read_index_section(&mut body, SECTION_POS, term_count, header.triple_count)?;
        let osp = read_index_section(&mut body, SECTION_OSP, term_count, header.triple_count)?;

        // predicate statistics.
        let mut st = read_section(&mut body, SECTION_STATS)?;
        let mut pred_stats: FxHashMap<TermId, PredicateStats> = FxHashMap::default();
        let mut prev_p = 0u64;
        let mut first_p = true;
        let mut stat_triples = 0usize;
        while !st.is_done() {
            let delta_p = st.varint()?;
            if !first_p && delta_p == 0 {
                return Err(st.corrupt("stat predicates are not strictly increasing"));
            }
            first_p = false;
            let raw_p = prev_p
                .checked_add(delta_p)
                .ok_or_else(|| st.corrupt("stat predicate id overflow"))?;
            prev_p = raw_p;
            let p = st.term_id(raw_p, term_count)?;
            let triples = usize::try_from(st.varint()?)
                .map_err(|_| st.corrupt("stat count overflows usize"))?;
            let distinct_subjects = usize::try_from(st.varint()?)
                .map_err(|_| st.corrupt("stat count overflows usize"))?;
            let distinct_objects = usize::try_from(st.varint()?)
                .map_err(|_| st.corrupt("stat count overflows usize"))?;
            stat_triples = stat_triples
                .checked_add(triples)
                .ok_or_else(|| st.corrupt("stat totals overflow"))?;
            pred_stats.insert(
                p,
                PredicateStats {
                    triples,
                    distinct_subjects,
                    distinct_objects,
                },
            );
        }
        if pred_stats.len() != header.pred_count {
            return Err(st.corrupt(format!(
                "stats section holds {} predicates, header promised {}",
                pred_stats.len(),
                header.pred_count
            )));
        }
        // Cross-check: the incremental stats must account for exactly the
        // triples every index section was validated to hold.
        if stat_triples != header.triple_count {
            return Err(st.corrupt(format!(
                "predicate stats cover {stat_triples} triples but the graph holds {}",
                header.triple_count
            )));
        }

        // text membership: rebuild the inverted index from the recorded ids
        // (ascending, so postings are appended in sorted order too).
        let mut tx = read_section(&mut body, SECTION_TEXT)?;
        let mut text = TextIndex::new();
        let mut prev_t = 0u64;
        let mut first_t = true;
        let mut indexed = 0usize;
        while !tx.is_done() {
            let delta = tx.varint()?;
            if !first_t && delta == 0 {
                return Err(tx.corrupt("text ids are not strictly increasing"));
            }
            first_t = false;
            let raw = prev_t
                .checked_add(delta)
                .ok_or_else(|| tx.corrupt("text id overflow"))?;
            prev_t = raw;
            let id = tx.term_id(raw, term_count)?;
            let Some(lit) = interner.resolve(id).as_literal() else {
                return Err(tx.corrupt(format!("text id {} is not a literal", id.0)));
            };
            text.index_literal(id, lit.lexical());
            indexed += 1;
        }
        if indexed != header.text_count {
            return Err(tx.corrupt(format!(
                "text section holds {indexed} literals, header promised {}",
                header.text_count
            )));
        }

        Ok(Graph::from_snapshot_parts(
            Arc::new(interner),
            spo,
            pos,
            osp,
            header.triple_count,
            pred_stats,
            Arc::new(text),
        ))
    }
}

// ---- shard artifacts -----------------------------------------------------

/// The key a shard snapshot is stamped with: the parent dataset key plus
/// the shard's position, so a shard file can never be confused with a
/// different shard count's artifact.
pub fn shard_snapshot_key(base_key: &str, shard: usize, shards: usize) -> String {
    format!("{base_key}/shard-{shard}-of-{shards}")
}

impl Partitioned {
    /// Writes one snapshot per shard into `dir` (`shard-<i>-of-<n>.snap`),
    /// each stamped with [`shard_snapshot_key`]. Returns the paths written.
    pub fn write_shard_snapshots(
        &self,
        dir: &Path,
        base_key: &str,
    ) -> Result<Vec<PathBuf>, RdfError> {
        let shards = self.shards.len();
        let mut paths = Vec::with_capacity(shards);
        for (i, shard) in self.shards.iter().enumerate() {
            let path = dir.join(format!("shard-{i}-of-{shards}.snap"));
            shard.write_snapshot(&path, &shard_snapshot_key(base_key, i, shards))?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// Loads one shard written by [`Partitioned::write_shard_snapshots`],
/// verifying it is the `shard`-th of `shards` artifacts of `base_key`.
pub fn load_shard_snapshot(
    path: &Path,
    base_key: &str,
    shard: usize,
    shards: usize,
) -> Result<Graph, RdfError> {
    Graph::load_snapshot(path, Some(&shard_snapshot_key(base_key, shard, shards)))
}

// ---- identity digest -----------------------------------------------------

/// An order-independent content digest of a graph: FNV-1a over the term
/// dictionary in interning order followed by the sorted triple stream.
///
/// Two graphs with the same digest hold the same terms (in the same
/// interning order, so ids are interchangeable) and the same triples —
/// the identity check the scale experiment uses where serializing 90M
/// triples to text for comparison would be infeasible.
pub fn graph_digest(graph: &Graph) -> u64 {
    let mut buf = Vec::with_capacity(64);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (_, term) in graph.interner().iter() {
        buf.clear();
        encode_term(&mut buf, term);
        hash = fnv1a_fold(hash, &buf);
    }
    for triple in graph.iter_sorted() {
        let mut bytes = [0u8; 12];
        bytes[0..4].copy_from_slice(&triple.s.0.to_le_bytes());
        bytes[4..8].copy_from_slice(&triple.p.0.to_le_bytes());
        bytes[8..12].copy_from_slice(&triple.o.0.to_le_bytes());
        hash = fnv1a_fold(hash, &bytes);
    }
    hash
}
