//! The interactive RE²xOLAP session (Algorithm 2).
//!
//! A [`Session`] drives the full workflow: synthesize candidate queries
//! from an example, let the caller pick one, execute it, offer refinements
//! from the ExRef suite, apply one, and repeat — with backtracking to any
//! earlier step. It also keeps the exploration accounting the paper reports
//! in Figure 8c: the cumulative number of *exploration paths* (distinct
//! queries offered) and of result tuples made accessible.

use crate::error::Re2xError;
use crate::query_model::OlapQuery;
use crate::refine::{disaggregate, similar, subset, RefineOp, Refinement};
use crate::reolap::{reolap, ReolapConfig, SynthesisOutcome};
use re2x_cube::VirtualSchemaGraph;
use re2x_obs::Tracer;
use re2x_sparql::{
    with_async_endpoint, AsyncResponse, AsyncSparqlEndpoint, Solutions, SparqlEndpoint, Ticket,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The phase a [`SessionObserver`] callback refers to — one entry per
/// user-visible session operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionPhase {
    /// Candidate-query synthesis ([`Session::synthesize`]).
    Synthesize,
    /// Query execution ([`Session::choose`] / [`Session::apply`]).
    Execute,
    /// Refinement generation ([`Session::refinements`]).
    Refine,
    /// Refinement preview fan-out ([`Session::preview`]).
    Preview,
}

impl SessionPhase {
    /// Stable lowercase name, suitable as a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionPhase::Synthesize => "synthesize",
            SessionPhase::Execute => "execute",
            SessionPhase::Refine => "refine",
            SessionPhase::Preview => "preview",
        }
    }
}

/// Lifecycle hooks for code hosting sessions — a serving layer records
/// per-tenant round latency, admission accounting, and end-of-session
/// metrics through these without the session knowing who hosts it.
///
/// Callbacks run on the session's thread, after the phase completed (hook
/// cost is not attributed to the phase). Implementations must be cheap
/// and must not call back into the session.
pub trait SessionObserver: Send + Sync {
    /// One session phase (a "round" of the interactive loop) finished,
    /// successfully or not, at the given endpoint cost.
    fn on_phase(&self, phase: SessionPhase, cost: StepCost) {
        let _ = (phase, cost);
    }

    /// The session ended ([`Session::finish`] or drop) with these final
    /// exploration metrics.
    fn on_session_end(&self, metrics: &ExplorationMetrics) {
        let _ = metrics;
    }
}

/// Session-level configuration.
#[derive(Clone)]
pub struct SessionConfig {
    /// Synthesis configuration.
    pub reolap: ReolapConfig,
    /// `k` for similarity-search refinements.
    pub similarity_k: usize,
    /// Percentile boundaries for the percentile refinement.
    pub percentiles: Vec<u8>,
    /// Tracer receiving session spans (`session.synthesize`,
    /// `session.execute`, `session.refine`). Disabled by default; also
    /// propagated into `reolap` unless that one carries its own tracer.
    pub tracer: Tracer,
    /// Lifecycle observer, if a hosting layer wants per-phase callbacks.
    pub observer: Option<Arc<dyn SessionObserver>>,
}

impl fmt::Debug for SessionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionConfig")
            .field("reolap", &self.reolap)
            .field("similarity_k", &self.similarity_k)
            .field("percentiles", &self.percentiles)
            .field("tracer", &self.tracer)
            .field("observer", &self.observer.as_ref().map(|_| "<dyn>"))
            .finish()
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            reolap: ReolapConfig::default(),
            similarity_k: 3,
            percentiles: subset::DEFAULT_PERCENTILES.to_vec(),
            tracer: Tracer::disabled(),
            observer: None,
        }
    }
}

/// Endpoint cost of one executed step (wall time of the call plus the
/// endpoint-stats delta it caused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepCost {
    /// Wall-clock time of the operation.
    pub wall: Duration,
    /// Queries the endpoint answered during it.
    pub endpoint_queries: u64,
    /// Endpoint busy time consumed by it.
    pub endpoint_busy: Duration,
}

/// One executed step of the exploration: a query and its results.
#[derive(Debug, Clone)]
pub struct Step {
    /// The executed query.
    pub query: OlapQuery,
    /// Its result set.
    pub solutions: Solutions,
    /// What executing it cost.
    pub cost: StepCost,
}

/// Accumulated cost of one session phase across all its invocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Times the phase ran.
    pub invocations: u64,
    /// Summed wall-clock time.
    pub wall: Duration,
    /// Summed endpoint queries.
    pub endpoint_queries: u64,
    /// Summed endpoint busy time.
    pub endpoint_busy: Duration,
}

impl PhaseCost {
    fn add(&mut self, cost: StepCost) {
        self.invocations += 1;
        self.wall += cost.wall;
        self.endpoint_queries += cost.endpoint_queries;
        self.endpoint_busy += cost.endpoint_busy;
    }
}

/// Per-phase cost breakdown of the session — the paper's synthesis /
/// execution / refinement attribution (Figs. 6–9), computed from endpoint
/// stats deltas so it works with tracing disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Candidate-query synthesis ([`Session::synthesize`]).
    pub synthesis: PhaseCost,
    /// Query execution ([`Session::choose`] / [`Session::apply`]).
    pub execution: PhaseCost,
    /// Refinement generation ([`Session::refinements`]).
    pub refinement: PhaseCost,
}

/// Cumulative exploration accounting (Figure 8c).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorationMetrics {
    /// Number of user interactions performed (synthesis, executions,
    /// refinement requests).
    pub interactions: u64,
    /// Cumulative number of exploration paths (queries) offered.
    pub paths_offered: u64,
    /// Cumulative number of result tuples made accessible.
    pub tuples_accessible: u64,
    /// Per-phase cost breakdown.
    pub phases: PhaseBreakdown,
}

/// An interactive example-driven exploration session.
pub struct Session<'a> {
    endpoint: &'a dyn SparqlEndpoint,
    schema: &'a VirtualSchemaGraph,
    config: SessionConfig,
    history: Vec<Step>,
    metrics: ExplorationMetrics,
    ended: bool,
}

impl<'a> Session<'a> {
    /// Starts a session over a bootstrapped schema.
    pub fn new(
        endpoint: &'a dyn SparqlEndpoint,
        schema: &'a VirtualSchemaGraph,
        mut config: SessionConfig,
    ) -> Self {
        // one tracer for the whole session unless synthesis carries its own
        if !config.reolap.tracer.is_enabled() {
            config.reolap.tracer = config.tracer.clone();
        }
        Session {
            endpoint,
            schema,
            config,
            history: Vec::new(),
            metrics: ExplorationMetrics::default(),
            ended: false,
        }
    }

    /// The schema this session explores.
    pub fn schema(&self) -> &VirtualSchemaGraph {
        self.schema
    }

    /// Starts measuring one operation against the endpoint's stats.
    fn cost_begin(&self) -> (Instant, u64, Duration) {
        let stats = self.endpoint.stats();
        // lint:allow(no-wallclock, per-step cost timing feeds ExplorationMetrics::phases)
        (Instant::now(), stats.total_queries(), stats.busy)
    }

    /// Finishes the measurement begun by [`Session::cost_begin`].
    fn cost_end(&self, begin: (Instant, u64, Duration)) -> StepCost {
        let (start, queries_before, busy_before) = begin;
        let stats = self.endpoint.stats();
        StepCost {
            wall: start.elapsed(),
            endpoint_queries: stats.total_queries().saturating_sub(queries_before),
            endpoint_busy: stats.busy.saturating_sub(busy_before),
        }
    }

    /// Notifies the configured lifecycle observer of a completed phase and
    /// publishes the round on the tracer's metric surface, so live
    /// subscribers (the `re2x-tui` dashboard) see per-phase round counts
    /// and wall-time distributions even without a serving layer attached.
    fn notify(&self, phase: SessionPhase, cost: StepCost) {
        let tracer = &self.config.tracer;
        if tracer.is_enabled() {
            let labels = [("phase", phase.as_str())];
            tracer.counter_add(&re2x_obs::label("session.rounds", &labels), 1);
            tracer.observe(&re2x_obs::label("session.round_wall", &labels), cost.wall);
        }
        if let Some(observer) = &self.config.observer {
            observer.on_phase(phase, cost);
        }
    }

    /// Step 1 (Algorithm 2, line 1): synthesize candidate queries from an
    /// example tuple.
    pub fn synthesize(&mut self, example: &[&str]) -> Result<SynthesisOutcome, Re2xError> {
        let tracer = self.config.tracer.clone();
        let _span = tracer.span("session.synthesize");
        let begin = self.cost_begin();
        let outcome = reolap(self.endpoint, self.schema, example, &self.config.reolap)?;
        let cost = self.cost_end(begin);
        self.metrics.phases.synthesis.add(cost);
        self.notify(SessionPhase::Synthesize, cost);
        self.metrics.interactions += 1;
        self.metrics.paths_offered += outcome.queries.len() as u64;
        Ok(outcome)
    }

    /// Executes a chosen query and makes it the current step (Algorithm 2,
    /// line 5).
    pub fn choose(&mut self, query: OlapQuery) -> Result<&Step, Re2xError> {
        let tracer = self.config.tracer.clone();
        let _span = tracer.span("session.execute");
        let begin = self.cost_begin();
        let solutions = self.endpoint.select(&query.query)?;
        let cost = self.cost_end(begin);
        self.metrics.phases.execution.add(cost);
        self.notify(SessionPhase::Execute, cost);
        self.metrics.interactions += 1;
        self.metrics.tuples_accessible += solutions.len() as u64;
        self.history.push(Step {
            query,
            solutions,
            cost,
        });
        Ok(&self.history[self.history.len() - 1])
    }

    /// The current step, if any query has been executed.
    pub fn current(&self) -> Option<&Step> {
        self.history.last()
    }

    /// Full history, oldest first.
    pub fn history(&self) -> &[Step] {
        &self.history
    }

    /// Generates refinements of the current query with one ExRef operation
    /// (Algorithm 2, line 10).
    pub fn refinements(&mut self, op: RefineOp) -> Result<Vec<Refinement>, Re2xError> {
        let tracer = self.config.tracer.clone();
        let _span = tracer.span("session.refine");
        let begin = self.cost_begin();
        let Some(step) = self.history.last() else {
            return Err(Re2xError::NotApplicable(
                "no query has been executed yet".to_owned(),
            ));
        };
        let graph = self.endpoint.graph();
        let refinements = match op {
            RefineOp::Disaggregate => disaggregate::disaggregate(self.schema, &step.query),
            RefineOp::TopK => subset::topk(self.schema, &step.query, &step.solutions, graph),
            RefineOp::Percentile => subset::percentile(
                self.schema,
                &step.query,
                &step.solutions,
                graph,
                &self.config.percentiles,
            ),
            RefineOp::Similarity => similar::similarity(
                self.schema,
                &step.query,
                &step.solutions,
                graph,
                self.config.similarity_k,
            ),
        };
        let cost = self.cost_end(begin);
        self.metrics.phases.refinement.add(cost);
        self.notify(SessionPhase::Refine, cost);
        self.metrics.interactions += 1;
        self.metrics.paths_offered += refinements.len() as u64;
        Ok(refinements)
    }

    /// Executes every offered refinement's query, returning the result
    /// sets in refinement order — a preview of what each exploration path
    /// would show before committing to one with [`Session::apply`].
    ///
    /// With `workers == 0` the queries run one after another; otherwise
    /// they are submitted together through the poll-based async endpoint
    /// adapter and serviced by `workers` pool threads, overlapping their
    /// round-trips. Results are byte-identical either way (the async
    /// adapter preserves submission order), queries all attribute to the
    /// `session.preview` span, and previewed paths do not enter the
    /// session history or the tuples-accessible count.
    pub fn preview(
        &mut self,
        refinements: &[Refinement],
        workers: usize,
    ) -> Result<Vec<Solutions>, Re2xError> {
        let tracer = self.config.tracer.clone();
        let _span = tracer.span("session.preview");
        let begin = self.cost_begin();
        let solutions = if workers == 0 || refinements.len() < 2 {
            refinements
                .iter()
                .map(|r| Ok(self.endpoint.select(&r.query.query)?))
                .collect::<Result<Vec<Solutions>, Re2xError>>()?
        } else {
            let results = with_async_endpoint(self.endpoint, workers, |pool| {
                let tickets: Vec<Ticket> = refinements
                    .iter()
                    .map(|r| pool.submit_select(r.query.query.clone()))
                    .collect();
                pool.join_all(tickets)
            });
            results
                .into_iter()
                .map(|r| Ok(r.and_then(AsyncResponse::into_select)?))
                .collect::<Result<Vec<Solutions>, Re2xError>>()?
        };
        let cost = self.cost_end(begin);
        self.metrics.phases.execution.add(cost);
        self.notify(SessionPhase::Preview, cost);
        self.metrics.interactions += 1;
        Ok(solutions)
    }

    /// Applies a refinement: executes its query and makes it current.
    pub fn apply(&mut self, refinement: Refinement) -> Result<&Step, Re2xError> {
        self.choose(refinement.query)
    }

    /// Backtracks to the previous step. Returns `false` when already at the
    /// beginning.
    pub fn backtrack(&mut self) -> bool {
        if self.history.len() <= 1 {
            return false;
        }
        self.history.pop();
        true
    }

    /// Exploration accounting so far.
    pub fn metrics(&self) -> ExplorationMetrics {
        self.metrics
    }

    /// Ends the session, notifying the lifecycle observer exactly once
    /// with the final metrics, and returns them. Dropping an unfinished
    /// session notifies too, so hosting layers always see session end.
    pub fn finish(mut self) -> ExplorationMetrics {
        self.end();
        self.metrics
    }

    fn end(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        if let Some(observer) = &self.config.observer {
            observer.on_session_end(&self.metrics);
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::LocalEndpoint;

    fn fixture() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Germany rdfs:label "Germany" .
            ex:France rdfs:label "France" .
            ex:Sweden rdfs:label "Sweden" .
            ex:Syria rdfs:label "Syria" .
            ex:China rdfs:label "China" .
            ex:y2013 rdfs:label "2013" .
            ex:y2014 rdfs:label "2014" .

            ex:o1 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 300 .
            ex:o2 a ex:Obs ; ex:dest ex:France ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 300 .
            ex:o3 a ex:Obs ; ex:dest ex:Sweden ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 200 .
            ex:o4 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:China ; ex:year ex:y2013 ; ex:applicants 100 .
            ex:o5 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 600 .
            ex:o6 a ex:Obs ; ex:dest ex:France ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 300 .
            ex:o7 a ex:Obs ; ex:dest ex:Sweden ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 400 .
            ex:o8 a ex:Obs ; ex:dest ex:France ; ex:origin ex:China ; ex:year ex:y2014 ; ex:applicants 300 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        let ep = LocalEndpoint::new(g);
        let report = bootstrap(&ep, &BootstrapConfig::new("http://ex/Obs")).expect("bootstrap");
        (ep, report.schema)
    }

    /// The paper's example workflow: ReOLAP → Disaggregate → Disaggregate →
    /// Similarity → TopK, checking every hand-off.
    #[test]
    fn full_exploration_workflow() {
        let (ep, schema) = fixture();
        let config = SessionConfig {
            similarity_k: 1,
            ..SessionConfig::default()
        };
        let mut session = Session::new(&ep, &schema, config);

        // 1. synthesize from ⟨Germany⟩
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        assert_eq!(
            outcome.queries.len(),
            1,
            "Germany appears only as destination"
        );
        let step = session.choose(outcome.queries[0].clone()).expect("run");
        assert_eq!(step.solutions.len(), 3, "3 destinations");

        // 2. disaggregate by origin
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        assert_eq!(dis.len(), 2, "origin and year can be added");
        let by_origin = dis
            .into_iter()
            .find(|r| r.explanation.contains("Origin"))
            .expect("origin refinement");
        let step = session.apply(by_origin).expect("run");
        assert_eq!(step.solutions.len(), 5, "5 (dest, origin) combos");

        // 3. disaggregate by year
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        assert_eq!(dis.len(), 1, "only year remains");
        let step = session
            .apply(dis.into_iter().next().expect("year"))
            .expect("run");
        assert_eq!(step.solutions.len(), 8);

        // 4. similarity: Germany at dest level; origin & year are context
        let sims = session.refinements(RefineOp::Similarity).expect("sim");
        assert_eq!(sims.len(), 4, "one per measure column (4 aggregates)");
        let step = session
            .apply(sims.into_iter().next().expect("sim"))
            .expect("run");
        assert!(step.solutions.len() < 8, "similarity restricts the combos");
        assert!(!step.solutions.is_empty());

        // 5. top-k on the restricted set
        let tops = session.refinements(RefineOp::TopK).expect("topk");
        assert!(!tops.is_empty());
        let step = session
            .apply(tops.into_iter().next().expect("top"))
            .expect("run");
        assert!(!step.solutions.is_empty());

        let metrics = session.metrics();
        assert!(metrics.interactions >= 9);
        assert!(metrics.paths_offered >= 8);
        assert!(metrics.tuples_accessible >= 16);
    }

    #[test]
    fn phase_breakdown_attributes_endpoint_cost() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let before = ep.stats().total_queries();
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let _ = session.refinements(RefineOp::TopK).expect("refine");
        let phases = session.metrics().phases;
        assert_eq!(phases.synthesis.invocations, 1);
        assert_eq!(phases.execution.invocations, 1);
        assert_eq!(phases.refinement.invocations, 1);
        assert!(
            phases.synthesis.endpoint_queries > 0,
            "matching + validation query"
        );
        assert_eq!(
            phases.execution.endpoint_queries, 1,
            "exactly the chosen query"
        );
        // the three phases account for every query issued since the session
        // started (refinement generation itself issues none here)
        let issued = ep.stats().total_queries() - before;
        assert_eq!(
            phases.synthesis.endpoint_queries
                + phases.execution.endpoint_queries
                + phases.refinement.endpoint_queries,
            issued
        );
        // step cost is recorded on the history entry
        let step = session.current().expect("step");
        assert_eq!(step.cost.endpoint_queries, 1);
        assert!(step.cost.wall >= step.cost.endpoint_busy);
    }

    #[test]
    fn session_tracer_produces_phase_spans() {
        let (ep, schema) = fixture();
        let tracer = re2x_obs::Tracer::enabled();
        let config = SessionConfig {
            tracer: tracer.clone(),
            ..SessionConfig::default()
        };
        let mut session = Session::new(&ep, &schema, config);
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let events = tracer.events();
        let paths: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                re2x_obs::TraceEvent::Enter { path, .. } => Some(path.as_str()),
                _ => None,
            })
            .collect();
        assert!(paths.contains(&"session.synthesize"));
        // synthesis propagates the session tracer into reolap's spans
        assert!(paths.contains(&"session.synthesize/reolap"));
        assert!(paths.contains(&"session.synthesize/reolap/reolap.match"));
        assert!(paths.contains(&"session.execute"));
    }

    #[test]
    fn observer_sees_every_phase_and_session_end() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder {
            phases: Mutex<Vec<(SessionPhase, u64)>>,
            ended: Mutex<Vec<ExplorationMetrics>>,
        }
        impl SessionObserver for Recorder {
            fn on_phase(&self, phase: SessionPhase, cost: StepCost) {
                self.phases
                    .lock()
                    .expect("recorder")
                    .push((phase, cost.endpoint_queries));
            }
            fn on_session_end(&self, metrics: &ExplorationMetrics) {
                self.ended.lock().expect("recorder").push(*metrics);
            }
        }

        let (ep, schema) = fixture();
        let recorder = Arc::new(Recorder::default());
        let config = SessionConfig {
            observer: Some(recorder.clone() as Arc<dyn SessionObserver>),
            ..SessionConfig::default()
        };
        let mut session = Session::new(&ep, &schema, config);
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let refinements = session.refinements(RefineOp::Disaggregate).expect("refine");
        session.preview(&refinements, 0).expect("preview");
        let metrics = session.finish();

        let phases = recorder.phases.lock().expect("recorder");
        assert_eq!(
            phases.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![
                SessionPhase::Synthesize,
                SessionPhase::Execute,
                SessionPhase::Refine,
                SessionPhase::Preview,
            ]
        );
        assert!(phases[0].1 > 0, "synthesis issued endpoint queries");
        assert_eq!(phases[1].1, 1, "execute issued exactly the chosen query");
        let ended = recorder.ended.lock().expect("recorder");
        assert_eq!(ended.len(), 1, "session end delivered exactly once");
        assert_eq!(ended[0], metrics);
    }

    #[test]
    fn dropping_an_unfinished_session_notifies_end_once() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct EndCounter(AtomicU64);
        impl SessionObserver for EndCounter {
            fn on_session_end(&self, _: &ExplorationMetrics) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let (ep, schema) = fixture();
        let counter = Arc::new(EndCounter::default());
        let config = SessionConfig {
            observer: Some(counter.clone() as Arc<dyn SessionObserver>),
            ..SessionConfig::default()
        };
        {
            let mut session = Session::new(&ep, &schema, config);
            let _ = session.synthesize(&["Germany"]).expect("synthesis");
            // dropped without finish()
        }
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn refinements_before_any_query_is_an_error() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let err = session.refinements(RefineOp::TopK).unwrap_err();
        assert!(matches!(err, Re2xError::NotApplicable(_)));
    }

    #[test]
    fn backtracking_restores_previous_step() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let first_len = session.current().expect("step").solutions.len();

        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        session
            .apply(dis.into_iter().next().expect("one"))
            .expect("run");
        assert_ne!(session.current().expect("step").solutions.len(), first_len);

        assert!(session.backtrack());
        assert_eq!(session.current().expect("step").solutions.len(), first_len);
        assert!(!session.backtrack(), "cannot backtrack past the first step");
    }

    #[test]
    fn every_refinement_result_still_contains_the_example() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        session
            .apply(dis.into_iter().next().expect("one"))
            .expect("run");

        for op in [RefineOp::TopK, RefineOp::Percentile, RefineOp::Similarity] {
            let refinements = session.refinements(op).expect("refine");
            for refinement in refinements {
                let solutions = ep.select(&refinement.query.query).expect("runs");
                let graph = ep.graph();
                assert!(
                    !refinement.query.matching_rows(&solutions, graph).is_empty(),
                    "{op:?} refinement lost the example: {}",
                    refinement.query.sparql()
                );
            }
        }
    }
}
