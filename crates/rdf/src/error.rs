//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors raised while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error while parsing a serialization format.
    Syntax {
        /// 1-based line number where the error was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix {
        /// 1-based line number where the error was detected.
        line: usize,
        /// The undeclared prefix label.
        prefix: String,
    },
    /// A term id was used against an interner that does not know it.
    UnknownTerm(u32),
    /// A snapshot file does not start with the snapshot magic bytes.
    SnapshotBadMagic,
    /// A snapshot file uses a format version this build cannot read.
    SnapshotVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A snapshot file ended before a section was fully read.
    SnapshotTruncated {
        /// Section (or "header") being decoded when the data ran out.
        section: String,
        /// Byte offset within that section where the read failed.
        offset: usize,
    },
    /// A snapshot section's stored FNV checksum does not match its payload.
    SnapshotChecksum {
        /// The failing section.
        section: String,
    },
    /// A snapshot section decoded but its contents are inconsistent
    /// (out-of-range ids, unsorted runs, counts that disagree, …).
    SnapshotCorrupt {
        /// The inconsistent section.
        section: String,
        /// What was wrong.
        message: String,
    },
    /// A snapshot is stamped with a different dataset key than expected —
    /// a stale cache artifact that must be regenerated, not trusted.
    SnapshotKeyMismatch {
        /// The key the caller required.
        expected: String,
        /// The key embedded in the file.
        found: String,
    },
    /// The interner is full: it already holds the maximum number of
    /// distinct terms a `TermId` can address (`u32::MAX`), and a new term
    /// was presented for interning.
    TermCapacity,
    /// An I/O error while reading or writing a snapshot.
    Io(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            RdfError::UnknownPrefix { line, prefix } => {
                write!(f, "unknown prefix '{prefix}:' at line {line}")
            }
            RdfError::UnknownTerm(id) => write!(f, "unknown term id {id}"),
            RdfError::SnapshotBadMagic => {
                write!(f, "not a snapshot file (bad magic)")
            }
            RdfError::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads version {supported})"
                )
            }
            RdfError::SnapshotTruncated { section, offset } => {
                write!(
                    f,
                    "snapshot truncated in {section} section at offset {offset}"
                )
            }
            RdfError::SnapshotChecksum { section } => {
                write!(f, "snapshot checksum mismatch in {section} section")
            }
            RdfError::SnapshotCorrupt { section, message } => {
                write!(f, "corrupt snapshot {section} section: {message}")
            }
            RdfError::SnapshotKeyMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot key mismatch: expected '{expected}', file holds '{found}'"
                )
            }
            RdfError::TermCapacity => {
                write!(f, "interner full: u32::MAX distinct terms reached")
            }
            RdfError::Io(message) => write!(f, "snapshot i/o error: {message}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl RdfError {
    /// Convenience constructor for syntax errors.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        RdfError::Syntax {
            line,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = RdfError::syntax(3, "unexpected '.'");
        assert_eq!(e.to_string(), "syntax error at line 3: unexpected '.'");
        let e = RdfError::UnknownPrefix {
            line: 7,
            prefix: "ex".into(),
        };
        assert_eq!(e.to_string(), "unknown prefix 'ex:' at line 7");
        assert_eq!(RdfError::UnknownTerm(9).to_string(), "unknown term id 9");
        assert_eq!(
            RdfError::TermCapacity.to_string(),
            "interner full: u32::MAX distinct terms reached"
        );
    }
}
