//! A minimal JSONL parser for recorded event logs — the inverse of
//! [`crate::export::events_to_jsonl`] / [`crate::export::bus_events_to_jsonl`].
//!
//! The workspace is hermetic (no serde), and the JSON subset the exporters
//! emit is deliberately tiny: flat objects of string / integer / float /
//! bool / null values, plus one nested string-to-string object
//! (`"fields"`). This module parses exactly that subset — enough for
//! `repro watch` to replay a recorded session offline — and nothing more.
//! Round-tripping is pinned by a property test: parse → re-serialize is
//! byte-identical on seeded event streams.

use crate::bus::BusEvent;
use crate::tracer::{QueryKind, TraceEvent};
use std::time::Duration;

/// A parse failure, locating the offending JSONL line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole JSONL event log (one bus event per non-empty line).
pub fn parse_bus_events(input: &str) -> Result<Vec<BusEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_bus_event(line) {
            Ok(event) => events.push(event),
            Err(message) => {
                return Err(ParseError {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(events)
}

/// Parses one JSONL line into a bus event (trace events included).
pub fn parse_bus_event(line: &str) -> Result<BusEvent, String> {
    let obj = parse_object(line)?;
    let kind = get_str(&obj, "type")?;
    match kind.as_str() {
        "enter" | "exit" | "query" | "cache" => trace_from(&obj, &kind).map(BusEvent::Trace),
        "counter" => Ok(BusEvent::Counter {
            name: get_string(&obj, "name")?,
            delta: get_u64(&obj, "delta")?,
            at: micros(&obj, "at_us")?,
        }),
        "gauge" => Ok(BusEvent::Gauge {
            name: get_string(&obj, "name")?,
            value: get_f64(&obj, "value")?,
            at: micros(&obj, "at_us")?,
        }),
        "observe" => Ok(BusEvent::Observe {
            name: get_string(&obj, "name")?,
            latency: micros(&obj, "latency_us")?,
            at: micros(&obj, "at_us")?,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Parses one JSONL line into a trace event; metric deltas are an error.
pub fn parse_trace_event(line: &str) -> Result<TraceEvent, String> {
    match parse_bus_event(line)? {
        BusEvent::Trace(event) => Ok(event),
        other => Err(format!("expected a trace event, got {other:?}")),
    }
}

/// Parses a whole JSONL trace log ([`crate::export::events_to_jsonl`]).
pub fn parse_trace_events(input: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_trace_event(line) {
            Ok(event) => events.push(event),
            Err(message) => {
                return Err(ParseError {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(events)
}

fn trace_from(obj: &[(String, Json)], kind: &str) -> Result<TraceEvent, String> {
    match kind {
        "enter" => Ok(TraceEvent::Enter {
            span: get_u64(obj, "span")?,
            parent: match get(obj, "parent")? {
                Json::Null => None,
                Json::Num(raw) => Some(parse_u64(raw)?),
                other => {
                    return Err(format!(
                        "\"parent\": expected integer or null, got {other:?}"
                    ))
                }
            },
            path: get_string(obj, "path")?,
            name: get_string(obj, "name")?,
            thread: get_u64(obj, "thread")?,
            at: micros(obj, "at_us")?,
            fields: match get(obj, "fields")? {
                Json::Obj(pairs) => {
                    let mut fields = Vec::with_capacity(pairs.len());
                    for (k, v) in pairs {
                        match v {
                            Json::Str(s) => fields.push((k.clone(), s.clone())),
                            other => {
                                return Err(format!("field {k:?}: expected string, got {other:?}"))
                            }
                        }
                    }
                    fields
                }
                other => return Err(format!("\"fields\": expected object, got {other:?}")),
            },
        }),
        "exit" => Ok(TraceEvent::Exit {
            span: get_u64(obj, "span")?,
            path: get_string(obj, "path")?,
            thread: get_u64(obj, "thread")?,
            at: micros(obj, "at_us")?,
            wall: micros(obj, "wall_us")?,
            self_time: micros(obj, "self_us")?,
        }),
        "query" => Ok(TraceEvent::Query {
            path: get_string(obj, "path")?,
            kind: match get_str(obj, "kind")?.as_str() {
                "select" => QueryKind::Select,
                "ask" => QueryKind::Ask,
                "keyword" => QueryKind::Keyword,
                other => return Err(format!("unknown query kind {other:?}")),
            },
            thread: get_u64(obj, "thread")?,
            at: micros(obj, "at_us")?,
            latency: micros(obj, "latency_us")?,
        }),
        "cache" => Ok(TraceEvent::Cache {
            path: get_string(obj, "path")?,
            hit: get_bool(obj, "hit")?,
            thread: get_u64(obj, "thread")?,
            at: micros(obj, "at_us")?,
        }),
        other => Err(format!("unknown trace event type {other:?}")),
    }
}

// ---------------------------------------------------------------------
// The JSON subset: flat objects, one level of nesting for "fields".

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    /// Numbers are kept raw so integers and floats parse on demand.
    Num(String),
    Bool(bool),
    Null,
    Obj(Vec<(String, Json)>),
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s.clone()),
        other => Err(format!("{key:?}: expected string, got {other:?}")),
    }
}

fn get_string(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    get_str(obj, key)
}

fn get_bool(obj: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(obj, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("{key:?}: expected bool, got {other:?}")),
    }
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|e| format!("bad integer {raw:?}: {e}"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::Num(raw) => parse_u64(raw),
        other => Err(format!("{key:?}: expected integer, got {other:?}")),
    }
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(raw) => {
            let v = raw
                .parse::<f64>()
                .map_err(|e| format!("bad number {raw:?}: {e}"))?;
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("non-finite number {raw:?}"))
            }
        }
        other => Err(format!("{key:?}: expected number, got {other:?}")),
    }
}

fn micros(obj: &[(String, Json)], key: &str) -> Result<Duration, String> {
    Ok(Duration::from_micros(get_u64(obj, key)?))
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected {want:?}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of input")),
        }
    }

    fn peek_is(&mut self, want: char) -> bool {
        self.skip_ws();
        self.chars.peek() == Some(&want)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        // the exporters only emit \u for control chars, so
                        // surrogate pairs never occur in well-formed logs
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(format!("invalid \\u{code:04x} escape")),
                        }
                    }
                    Some(c) => return Err(format!("unknown escape \\{c}")),
                    None => return Err("unterminated escape".to_owned()),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<String, String> {
        let mut raw = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                raw.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        if raw.is_empty() {
            Err("expected a number".to_owned())
        } else {
            Ok(raw)
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for want in word.chars() {
            match self.chars.next() {
                Some(c) if c == want => {}
                other => return Err(format!("expected {word:?}, found {other:?}")),
            }
        }
        Ok(())
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        self.skip_ws();
        match self.chars.peek() {
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('{') => {
                if depth == 0 {
                    return Err("objects nest at most one level".to_owned());
                }
                Ok(Json::Obj(self.object(depth - 1)?))
            }
            Some('t') => {
                self.literal("true")?;
                Ok(Json::Bool(true))
            }
            Some('f') => {
                self.literal("false")?;
                Ok(Json::Bool(false))
            }
            Some('n') => {
                self.literal("null")?;
                Ok(Json::Null)
            }
            Some(_) => Ok(Json::Num(self.number()?)),
            None => Err("expected a value, found end of input".to_owned()),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Vec<(String, Json)>, String> {
        self.eat('{')?;
        let mut pairs = Vec::new();
        if self.peek_is('}') {
            self.chars.next();
            return Ok(pairs);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(':')?;
            let value = self.value(depth)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => {}
                Some('}') => return Ok(pairs),
                Some(c) => return Err(format!("expected ',' or '}}', found {c:?}")),
                None => return Err("unterminated object".to_owned()),
            }
        }
    }
}

fn parse_object(line: &str) -> Result<Vec<(String, Json)>, String> {
    let mut cursor = Cursor::new(line);
    let obj = cursor.object(1)?;
    cursor.skip_ws();
    if let Some(c) = cursor.chars.next() {
        return Err(format!("trailing input starting at {c:?}"));
    }
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{bus_events_to_jsonl, events_to_jsonl};
    use crate::tracer::Tracer;

    #[test]
    fn parses_a_recorded_trace_log() {
        let tracer = Tracer::enabled();
        {
            let _a = tracer.span_with("phase", &[("dim", "birth\"Place")]);
            tracer.record_query(QueryKind::Select, Duration::from_micros(7));
            tracer.record_cache(false);
        }
        let events = tracer.events();
        let jsonl = events_to_jsonl(&events);
        let parsed = parse_trace_events(&jsonl).expect("round-trip");
        // durations serialize at microsecond granularity, so the invariant
        // is byte-identity of the serialized form, not struct equality
        assert_eq!(events_to_jsonl(&parsed), jsonl);
        assert_eq!(parsed.len(), events.len());
        assert!(matches!(&parsed[0], TraceEvent::Enter { fields, .. }
            if fields == &[("dim".to_owned(), "birth\"Place".to_owned())]));
    }

    #[test]
    fn parses_metric_deltas() {
        let jsonl = "{\"type\":\"counter\",\"name\":\"c\",\"delta\":2,\"at_us\":10}\n\
                     {\"type\":\"gauge\",\"name\":\"g\",\"value\":1.5,\"at_us\":11}\n\
                     {\"type\":\"observe\",\"name\":\"h\",\"latency_us\":7,\"at_us\":12}\n";
        let events = parse_bus_events(jsonl).expect("parses");
        assert_eq!(events.len(), 3);
        assert_eq!(bus_events_to_jsonl(&events), jsonl, "byte-identical");
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = parse_bus_events(
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":1,\"at_us\":0}\nnot json\n",
        )
        .expect_err("second line is garbage");
        assert_eq!(err.line, 2);

        assert!(parse_bus_event("{\"type\":\"warp\"}").is_err());
        assert!(
            parse_bus_event("{\"type\":\"counter\"}").is_err(),
            "missing keys"
        );
        assert!(
            parse_bus_event("{\"type\":\"counter\",\"name\":\"c\",\"delta\":-1,\"at_us\":0}")
                .is_err()
        );
        assert!(parse_bus_event("{}").is_err());
        assert!(parse_bus_event("").is_err());
        assert!(
            parse_bus_event("{\"a\":{\"b\":{\"c\":1}}}").is_err(),
            "depth is bounded"
        );
    }

    #[test]
    fn unescapes_strings() {
        let line = "{\"type\":\"cache\",\"path\":\"a\\\"b\\\\c\\n\\t\\u0001\",\"hit\":false,\"thread\":3,\"at_us\":9}";
        match parse_trace_event(line).expect("parses") {
            TraceEvent::Cache {
                path,
                hit,
                thread,
                at,
            } => {
                assert_eq!(path, "a\"b\\c\n\t\u{1}");
                assert!(!hit);
                assert_eq!(thread, 3);
                assert_eq!(at, Duration::from_micros(9));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
