//! The DBpedia-shaped generator: an analytical view of Creative Works
//! (songs) with the messy, M-to-N hierarchy structure that makes the real
//! DBpedia extract the paper's worst case.
//!
//! Reproduces the Table 3 row exactly: 5 dimensions, 1 measure, 23 levels,
//! 87 160 dimension members, and — crucially — M-to-N hierarchy steps
//! (songs carry 1–3 genres; genres have multiple stylistic origins) plus
//! *dimension overlap*: the label-genre members carry the same lexical
//! labels as the song-genre members ("Genre 17" names a member in both
//! dimensions), so one keyword matches levels in several dimensions,
//! inflating interpretation combinations exactly as the paper describes
//! for DBpedia ("a high number of dimensions sharing similar values, e.g.
//! the genre of artists and the genre of production labels").
//!
//! Level tree (23 nodes, 14 leaves = the paper's 14 hierarchies):
//!
//! * `genre`(1400) → stylisticOrigin(240) → era(12); → derivative(300);
//!   → parentGenre(90)
//! * `artist`(63681) → hometown(2500) → country(180); → associatedAct(6000);
//!   → activeDecade(10)
//! * `recordLabel`(9000) → labelCountry(150); → labelGenre(900, labels
//!   shared with `genre`) → labelParentGenre(60); → foundingDecade(12)
//! * `instrument`(300) → family(40); → instrumentOrigin(80);
//!   → classification(15)
//! * `director`(2000) → nationality(120); → movement(60) → period(10)

use crate::common::{
    declare_predicate, link_rollup, make_members, pick_member, rng, Dataset, ExpectedShape,
};
use re2x_rdf::{vocab, Graph, Literal};

const NS: &str = "http://data.example.org/dbpedia/";

const GENRES: usize = 1400;
const STYLISTIC_ORIGINS: usize = 240;
const ERAS: usize = 12;
const DERIVATIVES: usize = 300;
const PARENT_GENRES: usize = 90;
const ARTISTS: usize = 63_681;
const HOMETOWNS: usize = 2500;
const COUNTRIES: usize = 180;
const ASSOCIATED_ACTS: usize = 6000;
const ACTIVE_DECADES: usize = 10;
const LABELS: usize = 9000;
const LABEL_COUNTRIES: usize = 150;
const LABEL_GENRES: usize = 900;
const LABEL_PARENT_GENRES: usize = 60;
const FOUNDING_DECADES: usize = 12;
const INSTRUMENTS: usize = 300;
const FAMILIES: usize = 40;
const INSTRUMENT_ORIGINS: usize = 80;
const CLASSIFICATIONS: usize = 15;
const DIRECTORS: usize = 2000;
const NATIONALITIES: usize = 120;
const MOVEMENTS: usize = 60;
const PERIODS: usize = 10;

/// Total members over all 23 levels.
const fn total_members() -> usize {
    (GENRES + STYLISTIC_ORIGINS + ERAS + DERIVATIVES + PARENT_GENRES)
        + (ARTISTS + HOMETOWNS + COUNTRIES + ASSOCIATED_ACTS + ACTIVE_DECADES)
        + (LABELS + LABEL_COUNTRIES + LABEL_GENRES + LABEL_PARENT_GENRES + FOUNDING_DECADES)
        + (INSTRUMENTS + FAMILIES + INSTRUMENT_ORIGINS + CLASSIFICATIONS)
        + (DIRECTORS + NATIONALITIES + MOVEMENTS + PERIODS)
}

/// Minimum observation count for exact Table 3 member counts (the artist
/// pool is the largest base level).
pub const FULL_SHAPE_OBSERVATIONS: usize = ARTISTS;

/// Generates the dataset. Member counts are exact whenever
/// `observations ≥ FULL_SHAPE_OBSERVATIONS`; the structure (23 levels,
/// M-to-N, shared pools) holds at any scale.
pub fn generate(observations: usize, seed: u64) -> Dataset {
    let mut graph = Graph::new();
    let mut rng = rng(seed);

    let p_genre = declare_predicate(&mut graph, NS, "genre", "Genre");
    let p_artist = declare_predicate(&mut graph, NS, "artist", "Artist");
    let p_label = declare_predicate(&mut graph, NS, "recordLabel", "Record Label");
    let p_instrument = declare_predicate(&mut graph, NS, "instrument", "Instrument");
    let p_director = declare_predicate(&mut graph, NS, "director", "Music Video Director");
    let rollup_names: [(&str, &str); 15] = [
        ("stylisticOrigin", "Stylistic Origin"),
        ("era", "Era"),
        ("derivative", "Derivative"),
        ("parentGenre", "Parent Genre"),
        ("hometown", "Hometown"),
        ("country", "Country"),
        ("associatedAct", "Associated Act"),
        ("activeDecade", "Active Decade"),
        ("labelCountry", "Label Country"),
        ("labelGenre", "Label Genre"),
        ("labelParentGenre", "Label Parent Genre"),
        ("foundingDecade", "Founding Decade"),
        ("family", "Instrument Family"),
        ("instrumentOrigin", "Instrument Origin"),
        ("classification", "Classification"),
        // movement/nationality/period declared below
    ];
    let mut rollup_preds: Vec<String> = rollup_names
        .iter()
        .map(|(local, label)| declare_predicate(&mut graph, NS, local, label))
        .collect();
    rollup_preds.push(declare_predicate(
        &mut graph,
        NS,
        "nationality",
        "Nationality",
    ));
    rollup_preds.push(declare_predicate(&mut graph, NS, "movement", "Movement"));
    rollup_preds.push(declare_predicate(&mut graph, NS, "period", "Period"));
    let p_measure = declare_predicate(&mut graph, NS, "playCount", "Play Count");

    let pred = |local: &str| -> String { format!("{NS}{local}") };

    // pools
    let genres = make_members(&mut graph, NS, "genre", GENRES, |i| format!("Genre {i}"));
    let origins = make_members(&mut graph, NS, "stylisticOrigin", STYLISTIC_ORIGINS, |i| {
        format!("Stylistic Origin {i}")
    });
    let eras = make_members(&mut graph, NS, "era", ERAS, |i| format!("Era {i}"));
    let derivatives = make_members(&mut graph, NS, "derivative", DERIVATIVES, |i| {
        format!("Derivative {i}")
    });
    let parents = make_members(&mut graph, NS, "parentGenre", PARENT_GENRES, |i| {
        format!("Parent Genre {i}")
    });
    let artists = make_members(&mut graph, NS, "artist", ARTISTS, |i| format!("Artist {i}"));
    let hometowns = make_members(&mut graph, NS, "hometown", HOMETOWNS, |i| {
        format!("Town {i}")
    });
    let countries = make_members(&mut graph, NS, "country", COUNTRIES, |i| {
        format!("Nation {i}")
    });
    let acts = make_members(&mut graph, NS, "associatedAct", ASSOCIATED_ACTS, |i| {
        format!("Act {i}")
    });
    let decades = make_members(&mut graph, NS, "activeDecade", ACTIVE_DECADES, |i| {
        format!("{}s", 1930 + 10 * i)
    });
    let labels = make_members(&mut graph, NS, "recordLabel", LABELS, |i| {
        format!("Label {i}")
    });
    let label_countries = make_members(&mut graph, NS, "labelCountry", LABEL_COUNTRIES, |i| {
        format!("Label Nation {i}")
    });
    // same lexical labels as the song-genre pool → cross-dimension keyword
    // ambiguity
    let label_genres = make_members(&mut graph, NS, "labelGenre", LABEL_GENRES, |i| {
        format!("Genre {i}")
    });
    let label_parents = make_members(
        &mut graph,
        NS,
        "labelParentGenre",
        LABEL_PARENT_GENRES,
        |i| format!("Parent Genre {i}"),
    );
    let founding = make_members(&mut graph, NS, "foundingDecade", FOUNDING_DECADES, |i| {
        format!("Founded {}s", 1900 + 10 * i)
    });
    let instruments = make_members(&mut graph, NS, "instrument", INSTRUMENTS, |i| {
        format!("Instrument {i}")
    });
    let families = make_members(&mut graph, NS, "family", FAMILIES, |i| {
        format!("Family {i}")
    });
    let instrument_origins = make_members(
        &mut graph,
        NS,
        "instrumentOrigin",
        INSTRUMENT_ORIGINS,
        |i| format!("Instrument Origin {i}"),
    );
    let classifications = make_members(&mut graph, NS, "classification", CLASSIFICATIONS, |i| {
        format!("Classification {i}")
    });
    let directors = make_members(&mut graph, NS, "director", DIRECTORS, |i| {
        format!("Director {i}")
    });
    let nationalities = make_members(&mut graph, NS, "nationality", NATIONALITIES, |i| {
        format!("Nationality {i}")
    });
    let movements = make_members(&mut graph, NS, "movement", MOVEMENTS, |i| {
        format!("Movement {i}")
    });
    let periods = make_members(&mut graph, NS, "period", PERIODS, |i| format!("Period {i}"));

    // hierarchy links — genre subtree is M-to-N
    let so = pred("stylisticOrigin");
    link_rollup(&mut graph, &genres, &origins, &so, Some(&mut rng));
    link_rollup(&mut graph, &origins, &eras, &pred("era"), None);
    let deriv = pred("derivative");
    link_rollup(&mut graph, &genres, &derivatives, &deriv, Some(&mut rng));
    let parent = pred("parentGenre");
    link_rollup(&mut graph, &genres, &parents, &parent, None);
    link_rollup(&mut graph, &artists, &hometowns, &pred("hometown"), None);
    link_rollup(&mut graph, &hometowns, &countries, &pred("country"), None);
    link_rollup(&mut graph, &artists, &acts, &pred("associatedAct"), None);
    link_rollup(&mut graph, &artists, &decades, &pred("activeDecade"), None);
    link_rollup(
        &mut graph,
        &labels,
        &label_countries,
        &pred("labelCountry"),
        None,
    );
    link_rollup(
        &mut graph,
        &labels,
        &label_genres,
        &pred("labelGenre"),
        Some(&mut rng),
    );
    link_rollup(
        &mut graph,
        &label_genres,
        &label_parents,
        &pred("labelParentGenre"),
        None,
    );
    link_rollup(
        &mut graph,
        &labels,
        &founding,
        &pred("foundingDecade"),
        None,
    );
    link_rollup(&mut graph, &instruments, &families, &pred("family"), None);
    link_rollup(
        &mut graph,
        &instruments,
        &instrument_origins,
        &pred("instrumentOrigin"),
        None,
    );
    link_rollup(
        &mut graph,
        &instruments,
        &classifications,
        &pred("classification"),
        None,
    );
    link_rollup(
        &mut graph,
        &directors,
        &nationalities,
        &pred("nationality"),
        None,
    );
    link_rollup(&mut graph, &directors, &movements, &pred("movement"), None);
    link_rollup(&mut graph, &movements, &periods, &pred("period"), None);

    // observations (songs)
    let type_id = graph.intern_iri(vocab::rdf::TYPE);
    let class_iri = format!("{NS}CreativeWork");
    let class_id = graph.intern_iri(&class_iri);
    let p_genre_id = graph.intern_iri(&p_genre);
    let p_artist_id = graph.intern_iri(&p_artist);
    let p_label_id = graph.intern_iri(&p_label);
    let p_instrument_id = graph.intern_iri(&p_instrument);
    let p_director_id = graph.intern_iri(&p_director);
    let p_measure_id = graph.intern_iri(&p_measure);
    for j in 0..observations {
        let obs = graph.intern_iri(format!("{NS}song/{j}"));
        graph.insert_ids(obs, type_id, class_id);
        // genre is multi-valued: 1–3 genres per song
        let first_genre = pick_member(j, GENRES, &mut rng);
        graph.insert_ids(obs, p_genre_id, genres.ids[first_genre]);
        for _ in 0..rng.gen_range(0..3) {
            let extra = rng.gen_range(0..GENRES);
            graph.insert_ids(obs, p_genre_id, genres.ids[extra]);
        }
        graph.insert_ids(
            obs,
            p_artist_id,
            artists.ids[pick_member(j, ARTISTS, &mut rng)],
        );
        graph.insert_ids(
            obs,
            p_label_id,
            labels.ids[pick_member(j, LABELS, &mut rng)],
        );
        graph.insert_ids(
            obs,
            p_instrument_id,
            instruments.ids[pick_member(j, INSTRUMENTS, &mut rng)],
        );
        graph.insert_ids(
            obs,
            p_director_id,
            directors.ids[pick_member(j, DIRECTORS, &mut rng)],
        );
        let value = graph.intern_literal(Literal::integer(rng.gen_range(1i64..1_000_000)));
        graph.insert_ids(obs, p_measure_id, value);
    }

    let _declared = (class_iri, rollup_preds);
    Dataset {
        graph,
        ..describe(observations)
    }
}

/// The dataset's metadata — everything [`generate`] produces except the
/// graph itself. Used to re-attach a snapshot-loaded graph without
/// regenerating the data (see [`crate::cache`]).
pub fn describe(observations: usize) -> Dataset {
    let pred = |local: &str| format!("{NS}{local}");
    let rollup_locals = [
        "stylisticOrigin",
        "era",
        "derivative",
        "parentGenre",
        "hometown",
        "country",
        "associatedAct",
        "activeDecade",
        "labelCountry",
        "labelGenre",
        "labelParentGenre",
        "foundingDecade",
        "family",
        "instrumentOrigin",
        "classification",
        "nationality",
        "movement",
        "period",
    ];
    Dataset {
        name: "dbpedia".to_owned(),
        graph: Graph::new(),
        observation_class: format!("{NS}CreativeWork"),
        observations,
        dimension_predicates: vec![
            pred("genre"),
            pred("artist"),
            pred("recordLabel"),
            pred("instrument"),
            pred("director"),
        ],
        rollup_predicates: rollup_locals.iter().map(|l| pred(l)).collect(),
        label_predicate: vocab::rdfs::LABEL.to_owned(),
        expected: ExpectedShape {
            dimensions: 5,
            measures: 1,
            levels: 23,
            members: total_members(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_arithmetic_matches_table3() {
        assert_eq!(total_members(), 87_160);
    }

    #[test]
    fn songs_have_multivalued_genres() {
        let d = generate(300, 11);
        let g = &d.graph;
        let genre = g.iri_id(&format!("{NS}genre")).expect("pred");
        let multi = (0..300)
            .filter(|j| {
                let song = g.iri_id(&format!("{NS}song/{j}")).expect("song");
                g.objects(song, genre).len() > 1
            })
            .count();
        assert!(multi > 50, "many songs carry several genres, got {multi}");
    }

    #[test]
    fn genre_labels_are_shared_across_dimensions() {
        let d = generate(50, 11);
        let g = &d.graph;
        // the lexical label "Genre 0" names two distinct member IRIs
        let hits = g.literals_matching_exact("Genre 0");
        assert_eq!(hits.len(), 1, "one literal term");
        let lit = hits[0];
        let mut subjects = Vec::new();
        g.for_each_matching(None, None, Some(lit), |t| subjects.push(t.s));
        assert_eq!(subjects.len(), 2, "song-genre and label-genre members");
    }

    #[test]
    fn level_tree_has_23_levels_and_14_leaves_by_construction() {
        // (structural bookkeeping: 5 bases + 18 roll-up level names, of
        // which 14 are leaves; verified at bootstrap time in the
        // integration suite)
        let bases = 5;
        let rollup_levels = 18;
        assert_eq!(bases + rollup_levels, 23);
    }
}
