//! Typed errors of the serving layer.
//!
//! Admission control and session hosting never panic on overload: a full
//! run-queue, a draining server, an unknown tenant, a blown query budget
//! and a worker that died mid-session each surface as a distinct variant,
//! so callers (and the workload driver's saturation accounting) can tell
//! back-pressure apart from failure.

use re2xolap::Re2xError;
use std::fmt;

/// Errors raised by the session server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The script names a tenant the server does not host.
    UnknownTenant(String),
    /// Admission control refused the session: the bounded run-queue was
    /// full. Back off and resubmit; nothing was enqueued.
    QueueFull {
        /// The configured queue capacity that was saturated.
        capacity: usize,
    },
    /// The server is draining; no new sessions are admitted.
    ShuttingDown,
    /// A session round failed in the exploration engine (this includes
    /// endpoint faults and exhausted query budgets, which arrive as
    /// `Re2xError::Sparql(SparqlError::Endpoint | BudgetExhausted)`).
    Session(Re2xError),
    /// The worker servicing the session panicked. The server recovered —
    /// other sessions and the metrics surface are unaffected — but this
    /// session's remaining rounds were lost.
    WorkerPanicked,
}

impl ServeError {
    /// Whether this error is the typed budget-exhaustion signal.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(
            self,
            ServeError::Session(Re2xError::Sparql(
                re2x_sparql::SparqlError::BudgetExhausted { .. }
            ))
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant '{id}'"),
            ServeError::QueueFull { capacity } => {
                write!(f, "admission refused: run-queue full ({capacity} waiting)")
            }
            ServeError::ShuttingDown => write!(f, "server is draining; not admitting sessions"),
            ServeError::Session(e) => write!(f, "session round failed: {e}"),
            ServeError::WorkerPanicked => write!(f, "worker panicked while servicing the session"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<Re2xError> for ServeError {
    fn from(value: Re2xError) -> Self {
        ServeError::Session(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_sparql::SparqlError;

    #[test]
    fn display_formats() {
        assert!(ServeError::UnknownTenant("t9".into())
            .to_string()
            .contains("t9"));
        assert!(ServeError::QueueFull { capacity: 4 }
            .to_string()
            .contains('4'));
        assert!(ServeError::ShuttingDown.to_string().contains("draining"));
        assert!(ServeError::WorkerPanicked.to_string().contains("panicked"));
        let e: ServeError = Re2xError::MixedArity.into();
        assert!(matches!(e, ServeError::Session(_)));
    }

    #[test]
    fn budget_exhaustion_is_recognizable() {
        let e = ServeError::Session(Re2xError::Sparql(SparqlError::BudgetExhausted { limit: 3 }));
        assert!(e.is_budget_exhausted());
        assert!(!ServeError::ShuttingDown.is_budget_exhausted());
    }
}
