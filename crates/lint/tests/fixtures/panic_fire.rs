//! panic-freedom FIRE fixture: three panicking sites in library code.

pub fn risky(input: Option<u32>) -> u32 {
    let value = input.unwrap();
    let doubled = input.expect("present");
    if value > doubled {
        panic!("impossible");
    }
    value
}

#[cfg(test)]
mod tests {
    // unwrap in a test region must NOT fire
    #[test]
    fn asserts_freely() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
