//! The fixed-bucket latency histogram shared by endpoint statistics and the
//! metrics registry.
//!
//! This type originated in `re2x-sparql`'s [`EndpointStats`]; it lives here
//! so that per-phase query provenance, the metrics registry, and endpoint
//! statistics all aggregate latencies identically. `re2x-sparql` re-exports
//! it under its old path for compatibility.
//!
//! [`EndpointStats`]: https://docs.rs/re2x-sparql

use std::time::Duration;

/// Number of latency buckets (powers of two of microseconds; the last
/// bucket is open-ended and absorbs everything ≥ 2^23 µs ≈ 8.4 s).
const LATENCY_BUCKETS: usize = 24;

/// A fixed-bucket latency histogram over power-of-two microsecond bounds.
///
/// Bucket `i` (for `0 < i < 23`) counts observations whose latency `d`
/// satisfies `2^i µs ≤ d < 2^(i+1) µs`. The boundary buckets are wider:
/// bucket 0 covers the whole range `[0 ns, 2 µs)` — sub-microsecond
/// observations are clamped up to 1 µs before the power-of-two bucket
/// index is taken — and the last bucket (23) absorbs the open-ended long
/// tail `≥ 2^23 µs ≈ 8.4 s`. Fixed buckets keep the histogram `Copy` and
/// mergeable, which is what lets it live inside stats snapshots and travel
/// across threads; quantiles are resolved to a bucket's upper bound, i.e.
/// conservatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.buckets[Self::bucket_of(latency)] += 1;
    }

    /// Bucket index for a latency: `floor(log2(max(d, 1 µs)))` capped at the
    /// tail bucket. The clamp is what folds `[0 ns, 1 µs)` into bucket 0,
    /// giving it the documented `[0 ns, 2 µs)` range.
    fn bucket_of(latency: Duration) -> usize {
        let micros = latency.as_micros().max(1) as u64;
        (63 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket in
    /// which it falls, or `None` if nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(Self::bucket_upper_bound(LATENCY_BUCKETS - 1))
    }

    /// Upper bound of bucket `i` (`2^(i+1)` µs).
    fn bucket_upper_bound(i: usize) -> Duration {
        Duration::from_micros(1u64 << (i + 1))
    }

    /// Median latency (upper bucket bound).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (upper bucket bound).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The non-empty buckets as `(upper bound, count)` pairs, in ascending
    /// bound order — the exporters' view of the distribution.
    pub fn buckets(&self) -> impl Iterator<Item = (Duration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the documented bucket boundaries: bucket 0 covers the whole of
    /// `[0 ns, 2 µs)` (sub-microsecond observations included), interior
    /// buckets are `[2^i µs, 2^(i+1) µs)`, and the tail bucket absorbs
    /// everything from `2^23 µs ≈ 8.4 s` up.
    #[test]
    fn bucket_boundaries_are_pinned() {
        // bucket 0: [0 ns, 2 µs)
        assert_eq!(LatencyHistogram::bucket_of(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(1)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(999)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1)), 0);
        // 2 µs − 1 ns still truncates to 1 µs → bucket 0
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(1_999)), 0);
        // bucket 1 starts exactly at 2 µs
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(3)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(4)), 2);
        // the tail bucket opens at 2^23 µs ≈ 8.4 s and is unbounded
        assert_eq!(
            LatencyHistogram::bucket_of(Duration::from_micros(1 << 23)),
            23
        );
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_secs(9)), 23);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_secs(3600)), 23);
    }

    #[test]
    fn buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket [2µs, 4µs)
        }
        h.record(Duration::from_millis(40)); // tail
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), Some(Duration::from_micros(4)));
        // the p99 rank (99 of 100) still falls in the 3µs bucket; the tail
        // observation is only reached beyond it
        assert_eq!(h.p99(), Some(Duration::from_micros(4)));
        assert!(h.quantile(1.0).expect("max") >= Duration::from_millis(40));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(10));
        b.record(Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn bucket_iterator_reports_bounds_and_counts() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(5));
        let buckets: Vec<(Duration, u64)> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(Duration::from_micros(2), 2), (Duration::from_micros(8), 1),]
        );
    }
}
