//! Offline replay: fold a recorded event log into frames at a fixed
//! event-time cadence. Entirely pure — frame boundaries come from event
//! timestamps, never from a wall clock — so `repro watch --headless`
//! renders byte-identical output in CI with no terminal and no network.

use crate::frame::Frame;
use crate::render::{render_with, RenderOptions};
use crate::state::DashboardState;
use re2x_obs::{fmt_duration, BusEvent};
use std::time::Duration;

/// Default event-time cadence between frames.
pub const FRAME_INTERVAL: Duration = Duration::from_millis(250);

/// Folds `events` in timestamp order, emitting a frame each time event
/// time crosses an `interval` boundary, plus one final frame after the
/// last event. Returns `(boundary, frame)` pairs — the boundary is what a
/// live player paces against.
pub fn frames(
    events: &[BusEvent],
    interval: Duration,
    opts: RenderOptions,
) -> Vec<(Duration, Frame)> {
    let mut state = DashboardState::new();
    let mut out = Vec::new();
    let interval = interval.max(Duration::from_millis(1));
    let mut next_boundary = interval;
    for event in events {
        while event.at() >= next_boundary {
            out.push((next_boundary, render_with(&state, opts)));
            next_boundary += interval;
        }
        state.apply(event);
    }
    out.push((state.clock, render_with(&state, opts)));
    out
}

/// Renders the whole replay as one concatenated plain-text script — the
/// golden-file format checked by `repro watch --headless`.
pub fn render_script(events: &[BusEvent], interval: Duration, opts: RenderOptions) -> String {
    let all = frames(events, interval, opts);
    let mut out = String::new();
    let last = all.len().saturating_sub(1);
    for (i, (boundary, frame)) in all.iter().enumerate() {
        if i == last {
            out.push_str(&format!("=== final @ {} ===\n", fmt_duration(*boundary)));
        } else {
            out.push_str(&format!(
                "=== frame {} @ {} ===\n",
                i + 1,
                fmt_duration(*boundary)
            ));
        }
        out.push_str(&frame.to_plain());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(at_ms: u64) -> BusEvent {
        BusEvent::Counter {
            name: "c".to_owned(),
            delta: 1,
            at: Duration::from_millis(at_ms),
        }
    }

    #[test]
    fn frames_split_on_event_time_boundaries() {
        let events = vec![counter(10), counter(300), counter(620)];
        let all = frames(&events, FRAME_INTERVAL, RenderOptions::default());
        // boundaries at 250ms and 500ms, plus the final frame
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, Duration::from_millis(250));
        assert_eq!(all[1].0, Duration::from_millis(500));
        assert_eq!(all[2].0, Duration::from_millis(620));
        assert!(all[0].1.to_plain().contains("1 events"));
        assert!(all[1].1.to_plain().contains("2 events"));
        assert!(all[2].1.to_plain().contains("3 events"));
    }

    #[test]
    fn script_renders_identically_twice() {
        let events = vec![counter(10), counter(300)];
        let a = render_script(&events, FRAME_INTERVAL, RenderOptions::default());
        let b = render_script(&events, FRAME_INTERVAL, RenderOptions::default());
        assert_eq!(a, b);
        assert!(a.starts_with("=== frame 1 @ 250.00ms ===\n"));
        assert!(a.contains("=== final @ 300.00ms ===\n"));
    }
}
