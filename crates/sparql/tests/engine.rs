//! End-to-end tests of the SPARQL engine against a small statistical graph
//! shaped like the paper's running example (Figure 1).

use re2x_rdf::io::parse_turtle;
use re2x_rdf::Graph;
use re2x_sparql::{evaluate, evaluate_ask, parse_query, Solutions};

/// Asylum-requests micro-KG: observations with destination, origin
/// (-> continent), year, and an applicant-count measure.
fn asylum_graph() -> Graph {
    let mut g = Graph::new();
    parse_turtle(
        r#"
        @prefix ex: <http://ex/> .
        ex:Syria ex:inContinent ex:Asia ; ex:label "Syria" .
        ex:China ex:inContinent ex:Asia ; ex:label "China" .
        ex:Ukraine ex:inContinent ex:Europe ; ex:label "Ukraine" .
        ex:Asia ex:label "Asia" .
        ex:Europe ex:label "Europe" .
        ex:Germany ex:label "Germany" .
        ex:France ex:label "France" .

        ex:o1 ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year 2013 ; ex:applicants 300 .
        ex:o2 ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year 2014 ; ex:applicants 600 .
        ex:o3 ex:dest ex:Germany ; ex:origin ex:China ; ex:year 2014 ; ex:applicants 100 .
        ex:o4 ex:dest ex:France ; ex:origin ex:Syria ; ex:year 2014 ; ex:applicants 300 .
        ex:o5 ex:dest ex:France ; ex:origin ex:Ukraine ; ex:year 2014 ; ex:applicants 50 .
        "#,
        &mut g,
    )
    .expect("parse fixture");
    g
}

fn run(g: &Graph, text: &str) -> Solutions {
    evaluate(g, &parse_query(text).expect("parse")).expect("evaluate")
}

fn number(sols: &Solutions, g: &Graph, row: usize, col: &str) -> f64 {
    sols.value(row, col)
        .unwrap_or_else(|| panic!("row {row} col {col} unbound"))
        .as_number(g)
        .expect("numeric")
}

fn string(sols: &Solutions, g: &Graph, row: usize, col: &str) -> String {
    sols.value(row, col)
        .unwrap_or_else(|| panic!("row {row} col {col} unbound"))
        .string_form(g)
}

#[test]
fn single_pattern_scan() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?o WHERE { ?o <http://ex/dest> <http://ex/Germany> }",
    );
    assert_eq!(sols.len(), 3);
}

#[test]
fn star_join_over_observation() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?d ?y WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/year> ?y . ?o <http://ex/origin> <http://ex/Syria> }",
    );
    assert_eq!(sols.len(), 3);
}

#[test]
fn sequence_property_path() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT DISTINCT ?c WHERE { ?o <http://ex/origin> / <http://ex/inContinent> ?c }",
    );
    assert_eq!(sols.len(), 2, "Asia and Europe");
}

#[test]
fn figure2_aggregation_shape() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?c ?d (SUM(?v) AS ?total) WHERE {
            ?o <http://ex/origin> / <http://ex/inContinent> ?c .
            ?o <http://ex/dest> ?d .
            ?o <http://ex/applicants> ?v .
        } GROUP BY ?c ?d ORDER BY DESC(?total)",
    );
    // groups: (Asia,Germany)=1000, (Asia,France)=300, (Europe,France)=50
    assert_eq!(sols.len(), 3);
    assert_eq!(number(&sols, &g, 0, "total"), 1000.0);
    assert_eq!(string(&sols, &g, 0, "c"), "http://ex/Asia");
    assert_eq!(string(&sols, &g, 0, "d"), "http://ex/Germany");
    assert_eq!(number(&sols, &g, 2, "total"), 50.0);
}

#[test]
fn all_aggregate_functions() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?d (SUM(?v) AS ?s) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) (AVG(?v) AS ?av) (COUNT(?v) AS ?n)
         WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?v } GROUP BY ?d ORDER BY ?d",
    );
    assert_eq!(sols.len(), 2);
    // France first (lexicographic)
    assert_eq!(string(&sols, &g, 0, "d"), "http://ex/France");
    assert_eq!(number(&sols, &g, 0, "s"), 350.0);
    assert_eq!(number(&sols, &g, 0, "mn"), 50.0);
    assert_eq!(number(&sols, &g, 0, "mx"), 300.0);
    assert_eq!(number(&sols, &g, 0, "av"), 175.0);
    assert_eq!(number(&sols, &g, 0, "n"), 2.0);
    assert_eq!(number(&sols, &g, 1, "s"), 1000.0);
}

#[test]
fn aggregates_over_non_numeric_and_empty_groups() {
    // Regression: SUM returned a bound 0 for a group whose bindings are
    // all non-numeric (while AVG/MIN/MAX were unbound), so a spurious
    // `SUM = 0` could satisfy HAVING filters. All four must agree: unbound
    // when no binding is numeric; COUNT alone stays bound (counts rows).
    let mut g = Graph::new();
    parse_turtle(
        r#"
        @prefix ex: <http://ex/> .
        ex:o1 ex:dest ex:Germany ; ex:note "textual" .
        ex:o2 ex:dest ex:Germany ; ex:note "also text" .
        ex:o3 ex:dest ex:France ; ex:note 7 .
        "#,
        &mut g,
    )
    .expect("parse fixture");
    let sols = run(
        &g,
        "SELECT ?d (SUM(?v) AS ?s) (AVG(?v) AS ?av) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) (COUNT(?v) AS ?n)
         WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/note> ?v } GROUP BY ?d ORDER BY ?d",
    );
    assert_eq!(sols.len(), 2);
    // France: the one numeric note binds every aggregate
    assert_eq!(string(&sols, &g, 0, "d"), "http://ex/France");
    for col in ["s", "av", "mn", "mx"] {
        assert_eq!(number(&sols, &g, 0, col), 7.0, "numeric group col {col}");
    }
    assert_eq!(number(&sols, &g, 0, "n"), 1.0);
    // Germany: all-non-numeric group — numeric aggregates unbound, COUNT = 2
    assert_eq!(string(&sols, &g, 1, "d"), "http://ex/Germany");
    for col in ["s", "av", "mn", "mx"] {
        assert!(
            sols.value(1, col).is_none(),
            "col {col} must be unbound over a non-numeric group"
        );
    }
    assert_eq!(number(&sols, &g, 1, "n"), 2.0);

    // the empty-group shape: no rows match at all → one implicit group,
    // numeric aggregates unbound, COUNT(*) = 0
    let empty = run(
        &g,
        "SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?av) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) (COUNT(*) AS ?n)
         WHERE { ?o <http://ex/missing> ?v }",
    );
    assert_eq!(empty.len(), 1);
    for col in ["s", "av", "mn", "mx"] {
        assert!(empty.value(0, col).is_none(), "empty group col {col}");
    }
    assert_eq!(number(&empty, &g, 0, "n"), 0.0);

    // and the HAVING consequence the bug allowed: SUM = 0 must NOT select
    // the all-non-numeric Germany group
    let having = run(
        &g,
        "SELECT ?d (SUM(?v) AS ?s) WHERE {
            ?o <http://ex/dest> ?d . ?o <http://ex/note> ?v
        } GROUP BY ?d HAVING(SUM(?v) = 0)",
    );
    assert_eq!(having.len(), 0, "no group has a numeric sum of zero");
}

#[test]
fn implicit_single_group_without_group_by() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT (SUM(?v) AS ?total) (COUNT(*) AS ?n) WHERE { ?o <http://ex/applicants> ?v }",
    );
    assert_eq!(sols.len(), 1);
    assert_eq!(number(&sols, &g, 0, "total"), 1350.0);
    assert_eq!(number(&sols, &g, 0, "n"), 5.0);
}

#[test]
fn count_star_on_empty_match_is_zero() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT (COUNT(*) AS ?n) WHERE { ?o <http://ex/dest> <http://ex/Spain> }",
    );
    assert_eq!(sols.len(), 1);
    assert_eq!(number(&sols, &g, 0, "n"), 0.0);
}

#[test]
fn having_filters_groups() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?d (SUM(?v) AS ?total) WHERE {
            ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?v
        } GROUP BY ?d HAVING(SUM(?v) > 500)",
    );
    assert_eq!(sols.len(), 1);
    assert_eq!(string(&sols, &g, 0, "d"), "http://ex/Germany");
}

#[test]
fn having_can_reference_group_key() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?d (SUM(?v) AS ?total) WHERE {
            ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?v
        } GROUP BY ?d HAVING(?d = <http://ex/France>)",
    );
    assert_eq!(sols.len(), 1);
    assert_eq!(number(&sols, &g, 0, "total"), 350.0);
}

#[test]
fn filter_on_measure_values() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?o WHERE { ?o <http://ex/applicants> ?v . FILTER(?v >= 300 && ?v < 600) }",
    );
    assert_eq!(sols.len(), 2, "o1 and o4 at 300");
}

#[test]
fn filter_with_in_list_of_iris() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?o WHERE { ?o <http://ex/origin> ?c . FILTER(?c IN (<http://ex/Syria>, <http://ex/Ukraine>)) }",
    );
    assert_eq!(sols.len(), 4);
}

#[test]
fn distinct_and_limit_offset() {
    let g = asylum_graph();
    let all = run(&g, "SELECT ?y WHERE { ?o <http://ex/year> ?y }");
    assert_eq!(all.len(), 5);
    let distinct = run(&g, "SELECT DISTINCT ?y WHERE { ?o <http://ex/year> ?y }");
    assert_eq!(distinct.len(), 2);
    let limited = run(
        &g,
        "SELECT ?y WHERE { ?o <http://ex/year> ?y } ORDER BY ?y LIMIT 2 OFFSET 1",
    );
    assert_eq!(limited.len(), 2);
}

#[test]
fn order_by_is_numeric_for_measures() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?v WHERE { ?o <http://ex/applicants> ?v } ORDER BY ASC(?v)",
    );
    let values: Vec<f64> = (0..sols.len()).map(|r| number(&sols, &g, r, "v")).collect();
    assert_eq!(values, vec![50.0, 100.0, 300.0, 300.0, 600.0]);
}

#[test]
fn ask_queries() {
    let g = asylum_graph();
    assert!(evaluate_ask(
        &g,
        &parse_query("ASK { ?o <http://ex/dest> <http://ex/Germany> }").expect("parse")
    )
    .expect("ask"));
    assert!(!evaluate_ask(
        &g,
        &parse_query("ASK { ?o <http://ex/dest> <http://ex/Spain> }").expect("parse")
    )
    .expect("ask"));
}

#[test]
fn constants_absent_from_graph_yield_empty_not_error() {
    let g = asylum_graph();
    let sols = run(&g, "SELECT ?o WHERE { ?o <http://nowhere/p> ?x }");
    assert!(sols.is_empty());
    let sols = run(
        &g,
        "SELECT ?o WHERE { ?o <http://ex/dest> <http://nowhere/X> }",
    );
    assert!(sols.is_empty());
}

#[test]
fn variable_predicate_enumeration() {
    let g = asylum_graph();
    let sols = run(&g, "SELECT DISTINCT ?p WHERE { <http://ex/o1> ?p ?x }");
    assert_eq!(sols.len(), 4, "dest, origin, year, applicants");
}

#[test]
fn shared_variable_within_one_pattern() {
    let mut g = Graph::new();
    parse_turtle(
        "@prefix ex: <http://ex/> . ex:a ex:p ex:a . ex:a ex:p ex:b .",
        &mut g,
    )
    .expect("parse");
    let sols = run(&g, "SELECT ?x WHERE { ?x <http://ex/p> ?x }");
    assert_eq!(sols.len(), 1);
}

#[test]
fn cross_product_when_patterns_share_no_vars() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?a ?b WHERE { ?a <http://ex/year> 2013 . ?b <http://ex/year> 2014 }",
    );
    assert_eq!(sols.len(), 4, "1 obs in 2013 × 4 obs in 2014");
}

#[test]
fn select_star_excludes_internal_path_variables() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT * WHERE { ?o <http://ex/origin> / <http://ex/inContinent> ?c }",
    );
    assert_eq!(sols.vars, vec!["o", "c"]);
}

#[test]
fn projecting_ungrouped_variable_is_rejected() {
    let g = asylum_graph();
    let q = parse_query(
        "SELECT ?d ?y (SUM(?v) AS ?t) WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/year> ?y . ?o <http://ex/applicants> ?v } GROUP BY ?d",
    )
    .expect("parse");
    let err = evaluate(&g, &q).unwrap_err();
    assert!(err.to_string().contains("neither grouped nor aggregated"));
}

#[test]
fn aggregate_in_where_filter_is_rejected() {
    let g = asylum_graph();
    let q = parse_query("SELECT ?d WHERE { ?o <http://ex/dest> ?d . FILTER(SUM(?v) > 3) }")
        .expect("parse");
    let err = evaluate(&g, &q).unwrap_err();
    assert!(err.to_string().contains("HAVING"));
}

#[test]
fn filter_contains_over_labels() {
    let g = asylum_graph();
    let sols = run(
        &g,
        r#"SELECT ?m WHERE { ?m <http://ex/label> ?l . FILTER(CONTAINS(LCASE(STR(?l)), "an")) }"#,
    );
    // Germany, France — "an" inside both; China too ("china" has no "an"?
    // c-h-i-n-a: no). Ukraine: u-k-r-a-i-n-e: no "an".
    assert_eq!(sols.len(), 2);
}

#[test]
fn schema_discovery_style_queries() {
    let g = asylum_graph();
    // dimension predicates: object is an IRI
    let dims = run(
        &g,
        "SELECT DISTINCT ?p WHERE { ?o <http://ex/applicants> ?any . ?o ?p ?m . FILTER(isIRI(?m)) }",
    );
    assert_eq!(dims.len(), 2, "dest and origin");
    // measures: object is numeric
    let measures = run(
        &g,
        "SELECT DISTINCT ?p WHERE { ?o <http://ex/dest> ?d . ?o ?p ?v . FILTER(isNumeric(?v)) }",
    );
    assert_eq!(
        measures.len(),
        2,
        "applicants and year are both numeric here"
    );
    // attributes: literal but not numeric
    let attrs = run(
        &g,
        "SELECT DISTINCT ?a WHERE { ?o <http://ex/origin> ?m . ?m ?a ?l . FILTER(isLiteral(?l) && !isNumeric(?l)) }",
    );
    assert_eq!(attrs.len(), 1, "label");
}

// ---- permutation invariance (exercises the join planner) -----------------

#[test]
fn join_order_permutations_agree() {
    let g = asylum_graph();
    let patterns = [
        "?o <http://ex/origin> / <http://ex/inContinent> ?c .",
        "?o <http://ex/dest> ?d .",
        "?o <http://ex/applicants> ?v .",
        "?o <http://ex/year> ?y .",
    ];
    let reference: Option<Vec<Vec<String>>> = None;
    let mut reference = reference;
    // all 24 permutations of the four patterns
    let idx = [0usize, 1, 2, 3];
    let mut permutations = Vec::new();
    permute(&idx, &mut Vec::new(), &mut permutations);
    assert_eq!(permutations.len(), 24);
    for perm in permutations {
        let body: String = perm
            .iter()
            .map(|&i| patterns[i])
            .collect::<Vec<_>>()
            .join("\n");
        let text = format!(
            "SELECT ?c ?d ?y (SUM(?v) AS ?t) WHERE {{ {body} }} GROUP BY ?c ?d ?y ORDER BY ?c ?d ?y"
        );
        let sols = run(&g, &text);
        let rendered: Vec<Vec<String>> = sols
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| v.as_ref().map_or_else(String::new, |v| v.string_form(&g)))
                    .collect()
            })
            .collect();
        match &reference {
            None => reference = Some(rendered),
            Some(expected) => assert_eq!(&rendered, expected),
        }
    }
}

fn permute(rest: &[usize], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if rest.is_empty() {
        out.push(prefix.clone());
        return;
    }
    for (i, &x) in rest.iter().enumerate() {
        let mut remaining = rest.to_vec();
        remaining.remove(i);
        prefix.push(x);
        permute(&remaining, prefix, out);
        prefix.pop();
    }
}

// ---- property-based tests -------------------------------------------------

mod properties {
    use super::*;
    use re2x_testkit::{check, TestRng};

    /// Builds a random star-shaped graph: N observations, each with a
    /// destination from a small pool and an integer measure.
    fn star_graph(dests: &[u8], values: &[u16]) -> Graph {
        let mut g = Graph::new();
        let dest_p = g.intern_iri("http://ex/dest");
        let val_p = g.intern_iri("http://ex/val");
        for (i, (&d, &v)) in dests.iter().zip(values).enumerate() {
            let obs = g.intern_iri(format!("http://ex/o{i}"));
            let dest = g.intern_iri(format!("http://ex/d{d}"));
            let val = g.intern_literal(re2x_rdf::Literal::integer(i64::from(v)));
            g.insert_ids(obs, dest_p, dest);
            g.insert_ids(obs, val_p, val);
        }
        g
    }

    /// Draws the (destination, value) observation pairs all three
    /// properties share.
    fn gen_pairs(rng: &mut TestRng, value_bound: u16) -> (Vec<u8>, Vec<u16>) {
        let n = rng.gen_range(1usize..60);
        let mut dests = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            dests.push(rng.gen_range(0u8..5));
            values.push(rng.gen_range(0u16..value_bound));
        }
        (dests, values)
    }

    /// SUM per group over the engine equals a hand-rolled group-by.
    #[test]
    fn grouped_sum_matches_oracle() {
        check("grouped_sum_matches_oracle", |rng| {
            let (dests, values) = gen_pairs(rng, 1000);
            let g = star_graph(&dests, &values);
            let sols = run(
                &g,
                "SELECT ?d (SUM(?v) AS ?total) WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/val> ?v } GROUP BY ?d",
            );
            let mut oracle: std::collections::BTreeMap<String, f64> = Default::default();
            for (d, v) in dests.iter().zip(&values) {
                *oracle.entry(format!("http://ex/d{d}")).or_default() += f64::from(*v);
            }
            assert_eq!(sols.len(), oracle.len());
            for r in 0..sols.len() {
                let d = string(&sols, &g, r, "d");
                let t = number(&sols, &g, r, "total");
                assert_eq!(t, oracle[&d]);
            }
        });
    }

    /// LIMIT never yields more rows than requested, and ORDER BY ASC is
    /// monotone.
    #[test]
    fn order_and_limit_contract() {
        check("order_and_limit_contract", |rng| {
            let (dests, values) = gen_pairs(rng, 1000);
            let limit = rng.gen_range(1usize..10);
            let g = star_graph(&dests, &values);
            let sols = run(
                &g,
                &format!(
                    "SELECT ?v WHERE {{ ?o <http://ex/val> ?v }} ORDER BY ASC(?v) LIMIT {limit}"
                ),
            );
            assert!(sols.len() <= limit);
            let nums: Vec<f64> = (0..sols.len()).map(|r| number(&sols, &g, r, "v")).collect();
            for w in nums.windows(2) {
                assert!(w[0] <= w[1]);
            }
            // the limited prefix is the global minimum prefix
            let mut all: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
            all.sort_by(f64::total_cmp);
            assert_eq!(&nums[..], &all[..nums.len()]);
        });
    }

    /// DISTINCT yields the set of distinct bindings.
    #[test]
    fn distinct_is_a_set() {
        check("distinct_is_a_set", |rng| {
            let (dests, values) = gen_pairs(rng, 50);
            let g = star_graph(&dests, &values);
            let sols = run(&g, "SELECT DISTINCT ?d WHERE { ?o <http://ex/dest> ?d }");
            let expected: std::collections::BTreeSet<u8> = dests.iter().copied().collect();
            assert_eq!(sols.len(), expected.len());
        });
    }
}

#[test]
fn explain_shows_plan_and_filters() {
    let g = asylum_graph();
    let q = parse_query(
        "SELECT ?d (SUM(?v) AS ?t) WHERE {
            ?o <http://ex/dest> ?d .
            ?o <http://ex/origin> <http://ex/Syria> .
            ?o <http://ex/applicants> ?v .
            FILTER(?v > 100)
        } GROUP BY ?d ORDER BY ?d",
    )
    .expect("parse");
    let plan = re2x_sparql::explain(&g, &q).expect("explain");
    // the selective constant-bound pattern is evaluated first
    let first = plan.lines().next().expect("non-empty");
    assert!(first.contains("http://ex/Syria"), "{plan}");
    assert!(plan.contains("filter (?v > 100)"), "{plan}");
    assert!(plan.contains("group by"), "{plan}");
    assert!(plan.contains("sort"), "{plan}");
    // bound variables are starred on later steps
    assert!(plan.contains("?o*"), "{plan}");
}

/// Golden plan: equal-cost patterns tie-break on pattern index, so the
/// plan for structurally identical queries is pinned byte-for-byte. All
/// three predicates below have five triples each (identical cost
/// estimates), so any instability in the greedy selection would reorder
/// the steps and fail this test.
#[test]
fn explain_plan_is_deterministic_golden() {
    let g = asylum_graph();
    let q = parse_query(
        "SELECT ?d ?y ?v WHERE {
            ?o <http://ex/dest> ?d .
            ?o <http://ex/year> ?y .
            ?o <http://ex/applicants> ?v
        }",
    )
    .expect("parse");
    let plan = re2x_sparql::explain(&g, &q).expect("explain");
    let expected = concat!(
        " 0. ?o <http://ex/dest> ?d   (cost estimate 1)\n",
        " 1. ?o* <http://ex/year> ?y   (cost estimate 0)\n",
        " 2. ?o* <http://ex/applicants> ?v   (cost estimate 0)\n",
    );
    assert_eq!(plan, expected);
}

#[test]
fn explain_renders_paths_with_internal_vars() {
    let g = asylum_graph();
    let q = parse_query("SELECT ?c WHERE { ?o <http://ex/origin> / <http://ex/inContinent> ?c }")
        .expect("parse");
    let plan = re2x_sparql::explain(&g, &q).expect("explain");
    assert!(
        plan.contains("?_path"),
        "internal join variable shown: {plan}"
    );
}

#[test]
fn count_distinct_aggregate() {
    let g = asylum_graph();
    // 5 observations, 2 distinct years, 4 distinct applicant values
    let sols = run(
        &g,
        "SELECT (COUNT(DISTINCT ?y) AS ?years) (COUNT(?y) AS ?rows) WHERE { ?o <http://ex/year> ?y }",
    );
    assert_eq!(number(&sols, &g, 0, "years"), 2.0);
    assert_eq!(number(&sols, &g, 0, "rows"), 5.0);
    // grouped variant
    let sols = run(
        &g,
        "SELECT ?d (COUNT(DISTINCT ?c) AS ?origins) WHERE {
            ?o <http://ex/dest> ?d . ?o <http://ex/origin> ?c
        } GROUP BY ?d ORDER BY ?d",
    );
    // France: Syria+Ukraine = 2; Germany: Syria+China = 2
    assert_eq!(number(&sols, &g, 0, "origins"), 2.0);
    assert_eq!(number(&sols, &g, 1, "origins"), 2.0);
}

#[test]
fn count_distinct_round_trips_and_rejects_other_aggs() {
    let q = parse_query("SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?o <http://ex/p> ?m }")
        .expect("parse");
    let text = re2x_sparql::query_to_sparql(&q);
    assert!(text.contains("COUNT(DISTINCT ?m)"), "{text}");
    assert_eq!(parse_query(&text).expect("reparse"), q);
    let err =
        parse_query("SELECT (SUM(DISTINCT ?m) AS ?n) WHERE { ?o <http://ex/p> ?m }").unwrap_err();
    assert!(err.to_string().contains("not supported"), "{err}");
}

#[test]
fn index_only_distinct_agrees_with_general_evaluation() {
    let g = asylum_graph();
    // each fast-path shape vs. a shape the optimizer does not recognize
    // (extra unused pattern forces the general evaluator)
    let pairs = [
        (
            "SELECT DISTINCT ?p WHERE { ?x ?p <http://ex/Syria> }",
            "SELECT DISTINCT ?p WHERE { ?x ?p <http://ex/Syria> . ?x ?p <http://ex/Syria> . }",
        ),
        (
            "SELECT DISTINCT ?p WHERE { <http://ex/o1> ?p ?x }",
            "SELECT DISTINCT ?p WHERE { <http://ex/o1> ?p ?x . <http://ex/o1> ?p ?x . }",
        ),
        (
            "SELECT DISTINCT ?c WHERE { ?x <http://ex/origin> ?c }",
            "SELECT DISTINCT ?c WHERE { ?x <http://ex/origin> ?c . ?x <http://ex/origin> ?c . }",
        ),
    ];
    for (fast, general) in pairs {
        let mut a: Vec<String> = run(&g, fast)
            .rows
            .iter()
            .map(|r| r[0].as_ref().expect("bound").string_form(&g))
            .collect();
        let mut b: Vec<String> = run(&g, general)
            .rows
            .iter()
            .map(|r| r[0].as_ref().expect("bound").string_form(&g))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{fast}");
    }
}

// ---- OPTIONAL and UNION ----------------------------------------------------

#[test]
fn optional_left_joins_missing_bindings() {
    let g = asylum_graph();
    // every origin country; its continent where one exists (all origins
    // here have continents, so add a member without one)
    let mut g = g;
    parse_turtle(
        "@prefix ex: <http://ex/> . ex:o9 ex:origin ex:Nowhere .",
        &mut g,
    )
    .expect("extend");
    let sols = run(
        &g,
        "SELECT DISTINCT ?c ?k WHERE {
            ?o <http://ex/origin> ?c .
            OPTIONAL { ?c <http://ex/inContinent> ?k }
        } ORDER BY ?c",
    );
    assert_eq!(sols.len(), 4, "Syria, China, Ukraine, Nowhere");
    let nowhere = (0..sols.len())
        .find(|&r| string(&sols, &g, r, "c").ends_with("Nowhere"))
        .expect("present");
    assert!(sols.value(nowhere, "k").is_none(), "continent unbound");
    let syria = (0..sols.len())
        .find(|&r| string(&sols, &g, r, "c").ends_with("Syria"))
        .expect("present");
    assert_eq!(string(&sols, &g, syria, "k"), "http://ex/Asia");
}

#[test]
fn optional_with_bound_filter_expresses_negation() {
    let mut g = asylum_graph();
    parse_turtle(
        "@prefix ex: <http://ex/> . ex:o9 ex:origin ex:Nowhere .",
        &mut g,
    )
    .expect("extend");
    // members WITHOUT a continent: the classic OPTIONAL + !BOUND pattern
    let sols = run(
        &g,
        "SELECT DISTINCT ?c WHERE {
            ?o <http://ex/origin> ?c .
            OPTIONAL { ?c <http://ex/inContinent> ?k }
            FILTER(!BOUND(?k))
        }",
    );
    assert_eq!(sols.len(), 1);
    assert_eq!(string(&sols, &g, 0, "c"), "http://ex/Nowhere");
}

#[test]
fn union_concatenates_branches() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?x WHERE {
            { ?o <http://ex/dest> ?x . ?o <http://ex/year> 2013 }
            UNION
            { ?o <http://ex/origin> ?x . ?o <http://ex/year> 2013 }
        }",
    );
    // 2013 has one observation: dest Germany + origin Syria
    assert_eq!(sols.len(), 2);
}

#[test]
fn union_branches_join_with_surrounding_patterns() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?o ?m WHERE {
            ?o <http://ex/applicants> ?v .
            FILTER(?v >= 600)
            { ?o <http://ex/dest> ?m } UNION { ?o <http://ex/origin> ?m }
        } ORDER BY ?m",
    );
    // only o2 (600): its dest and its origin
    assert_eq!(sols.len(), 2);
    assert_eq!(string(&sols, &g, 0, "m"), "http://ex/Germany");
    assert_eq!(string(&sols, &g, 1, "m"), "http://ex/Syria");
}

#[test]
fn union_inside_aggregation() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?m (SUM(?v) AS ?t) WHERE {
            ?o <http://ex/applicants> ?v .
            { ?o <http://ex/dest> ?m } UNION { ?o <http://ex/origin> ?m }
        } GROUP BY ?m ORDER BY DESC(?t)",
    );
    // every member's total as destination-or-origin
    let germany = (0..sols.len())
        .find(|&r| string(&sols, &g, r, "m") == "http://ex/Germany")
        .expect("germany");
    assert_eq!(number(&sols, &g, germany, "t"), 1000.0);
    let syria = (0..sols.len())
        .find(|&r| string(&sols, &g, r, "m") == "http://ex/Syria")
        .expect("syria");
    assert_eq!(
        number(&sols, &g, syria, "t"),
        1200.0,
        "300+600+300 as origin"
    );
}

#[test]
fn nested_optional_within_optional() {
    let mut g = Graph::new();
    parse_turtle(
        "@prefix ex: <http://ex/> .
         ex:a ex:p ex:b . ex:b ex:q ex:c . ex:c ex:r ex:d .
         ex:a2 ex:p ex:b2 .",
        &mut g,
    )
    .expect("parse");
    let sols = run(
        &g,
        "SELECT ?x ?y ?z WHERE {
            ?s <http://ex/p> ?x .
            OPTIONAL { ?x <http://ex/q> ?y . OPTIONAL { ?y <http://ex/r> ?z } }
        } ORDER BY ?x",
    );
    assert_eq!(sols.len(), 2);
    // b: q→c, r→d; b2: nothing
    assert_eq!(string(&sols, &g, 0, "z"), "http://ex/d");
    assert!(sols.value(1, "y").is_none());
    assert!(sols.value(1, "z").is_none());
}

#[test]
fn bare_braced_group_is_spliced() {
    let g = asylum_graph();
    let sols = run(
        &g,
        "SELECT ?d WHERE { { ?o <http://ex/dest> ?d . ?o <http://ex/year> 2013 } }",
    );
    assert_eq!(sols.len(), 1);
}

#[test]
fn ask_works_with_optional_and_union() {
    let g = asylum_graph();
    assert!(evaluate_ask(
        &g,
        &parse_query(
            "ASK { ?o <http://ex/dest> <http://ex/Germany> . OPTIONAL { ?o <http://ex/year> ?y } }"
        )
        .expect("parse")
    )
    .expect("ask"));
    assert!(!evaluate_ask(
        &g,
        &parse_query(
            "ASK { { ?o <http://ex/dest> <http://ex/Spain> } UNION { ?o <http://ex/origin> <http://ex/Spain> } }"
        )
        .expect("parse")
    )
    .expect("ask"));
}

#[test]
fn optional_union_round_trip_through_printer() {
    for text in [
        "SELECT ?c ?k WHERE { ?o <http://ex/origin> ?c . OPTIONAL { ?c <http://ex/inContinent> ?k . FILTER(?k != <http://ex/Asia>) } }",
        "SELECT ?x WHERE { { ?o <http://ex/dest> ?x } UNION { ?o <http://ex/origin> ?x } UNION { ?o <http://ex/year> ?x } }",
        "SELECT ?x ?y WHERE { ?s <http://ex/p> ?x . OPTIONAL { ?x <http://ex/q> ?y . OPTIONAL { ?y <http://ex/r> ?z } } }",
    ] {
        let q1 = parse_query(text).expect("parse");
        let printed = re2x_sparql::query_to_sparql(&q1);
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(q1, q2, "{printed}");
    }
}

#[test]
fn explain_mentions_nested_blocks() {
    let g = asylum_graph();
    let q = parse_query(
        "SELECT ?c ?k WHERE { ?o <http://ex/origin> ?c . OPTIONAL { ?c <http://ex/inContinent> ?k } { ?o <http://ex/year> 2013 } UNION { ?o <http://ex/year> 2014 } }",
    )
    .expect("parse");
    let plan = re2x_sparql::explain(&g, &q).expect("explain");
    assert!(plan.contains("OPTIONAL block"), "{plan}");
    assert!(plan.contains("UNION of 2 branch(es)"), "{plan}");
}
