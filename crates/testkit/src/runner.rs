//! The property runner: iteration budget, per-case seeds, and failing-seed
//! replay.

// lint:allow-file(no-debug-output, the harness reports failing case seeds to the terminal)

use crate::prng::{SplitMix64, TestRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property when `RE2X_TEST_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Base seed of the deterministic per-case seed stream. Arbitrary but
/// fixed: hermetic test runs must not depend on time or process identity.
const BASE_SEED: u64 = 0x5EED_2E2A_0B5E_D001;

/// Runs `property` for the default iteration budget ([`DEFAULT_CASES`],
/// overridable globally with the `RE2X_TEST_CASES` environment variable).
///
/// Each case receives a [`TestRng`] seeded from a deterministic per-case
/// seed. If a case panics, the harness reports the property name, the case
/// index, and the seed, then re-raises the panic; setting
/// `RE2X_TEST_SEED=<seed>` replays exactly that case (and only it).
pub fn check(name: &str, property: impl Fn(&mut TestRng)) {
    check_n(name, configured_cases(DEFAULT_CASES), property);
}

/// [`check`] with an explicit per-property iteration budget (still scaled
/// by `RE2X_TEST_CASES` when that is set: the environment variable wins,
/// so a whole run can be shortened or deepened uniformly).
pub fn check_n(name: &str, cases: u32, property: impl Fn(&mut TestRng)) {
    if let Some(seed) = seed_override() {
        run_case(name, 0, seed, &property);
        return;
    }
    let cases = configured_cases(cases);
    let mut stream = SplitMix64::new(BASE_SEED);
    for case in 0..cases {
        run_case(name, case, stream.next_u64(), &property);
    }
}

fn run_case(name: &str, case: u32, seed: u64, property: &impl Fn(&mut TestRng)) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = TestRng::seed_from_u64(seed);
        property(&mut rng);
    }));
    if let Err(payload) = outcome {
        eprintln!(
            "property '{name}' failed at case {case} (seed {seed:#018x}); \
             replay with RE2X_TEST_SEED={seed:#018x}"
        );
        resume_unwind(payload);
    }
}

fn configured_cases(default: u32) -> u32 {
    match std::env::var("RE2X_TEST_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("RE2X_TEST_CASES must be a number, got '{v}'")),
        Err(_) => default,
    }
}

fn seed_override() -> Option<u64> {
    let v = std::env::var("RE2X_TEST_SEED").ok()?;
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("RE2X_TEST_SEED must be a (hex) number, got '{v}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn runs_the_full_budget() {
        let count = AtomicU32::new(0);
        check_n("counts", 17, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        // RE2X_TEST_SEED / RE2X_TEST_CASES change the budget by design;
        // outside those overrides the budget is exact
        if std::env::var("RE2X_TEST_SEED").is_err() && std::env::var("RE2X_TEST_CASES").is_err() {
            assert_eq!(count.load(Ordering::Relaxed), 17);
        }
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let mut seeds = Vec::new();
        let mut stream = SplitMix64::new(BASE_SEED);
        for _ in 0..100 {
            seeds.push(stream.next_u64());
        }
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn failing_case_panics_through() {
        let result = std::panic::catch_unwind(|| {
            check_n("always fails", 3, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
