//! The rule set. Each rule scans one [`SourceFile`]'s token stream and
//! reports [`Finding`]s; `lock_order` additionally feeds a workspace-wide
//! nested-acquisition graph assembled by the engine.

pub mod dataflow;
pub mod debug_output;
pub mod forbid_unsafe;
pub mod lock_order;
pub mod panic_freedom;
pub mod seam;
pub mod wallclock;

use crate::findings::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Rule identifiers, in reporting order.
pub const ALL_RULES: &[&str] = &[
    "panic-freedom",
    "lock-order",
    "no-calls-under-lock",
    "guard-across-wait",
    "discarded-result",
    "no-wallclock",
    "endpoint-seam",
    "forbid-unsafe",
    "no-debug-output",
];

/// The comment-free token stream of a file (rules match on code only).
pub fn significant(file: &SourceFile) -> Vec<Token> {
    file.tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .copied()
        .collect()
}

/// Builds a finding for `rule` at the token's line.
pub fn finding_at(
    file: &SourceFile,
    rule: &'static str,
    token: &Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.path.clone(),
        line: token.line,
        snippet: file.line_snippet(token.line),
        message,
    }
}
