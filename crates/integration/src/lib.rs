#![forbid(unsafe_code)]

//! Hosts the workspace-level integration tests and examples.
