//! Rendering queries back to SPARQL text.
//!
//! RE²xOLAP presents reverse-engineered queries to the user (Figure 10 of
//! the paper); this printer produces standard SPARQL 1.1 that the crate's
//! own parser round-trips.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a query as SPARQL text.
pub fn query_to_sparql(query: &Query) -> String {
    let mut out = String::new();
    match query.form {
        QueryForm::Ask => out.push_str("ASK WHERE {\n"),
        QueryForm::Select => {
            out.push_str("SELECT ");
            if query.distinct {
                out.push_str("DISTINCT ");
            }
            if query.select.is_empty() {
                out.push('*');
            } else {
                let items: Vec<String> = query.select.iter().map(select_item).collect();
                out.push_str(&items.join(" "));
            }
            out.push_str(" WHERE {\n");
        }
    }
    write_elements(&mut out, &query.wher, 1);
    out.push('}');
    if !query.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for v in &query.group_by {
            let _ = write!(out, " ?{v}");
        }
    }
    if let Some(h) = &query.having {
        let _ = write!(out, " HAVING({})", expr(h));
    }
    if !query.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for key in &query.order_by {
            match key.order {
                Order::Asc => {
                    let _ = write!(out, " ASC(?{})", key.column);
                }
                Order::Desc => {
                    let _ = write!(out, " DESC(?{})", key.column);
                }
            }
        }
    }
    if let Some(l) = query.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = query.offset {
        let _ = write!(out, " OFFSET {o}");
    }
    out
}

fn write_elements(out: &mut String, elements: &[PatternElement], depth: usize) {
    let pad = "  ".repeat(depth);
    for element in elements {
        match element {
            PatternElement::Triple(t) => {
                let _ = writeln!(
                    out,
                    "{pad}{} {} {} .",
                    term_pattern(&t.subject),
                    predicate(&t.predicate),
                    term_pattern(&t.object)
                );
            }
            PatternElement::Filter(e) => {
                let _ = writeln!(out, "{pad}FILTER({})", expr(e));
            }
            PatternElement::Optional(inner) => {
                let _ = writeln!(out, "{pad}OPTIONAL {{");
                write_elements(out, inner, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            PatternElement::Union(branches) => {
                for (i, branch) in branches.iter().enumerate() {
                    if i == 0 {
                        let _ = writeln!(out, "{pad}{{");
                    } else {
                        let _ = writeln!(out, "{pad}}} UNION {{");
                    }
                    write_elements(out, branch, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

fn select_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Var(v) => format!("?{v}"),
        SelectItem::Agg {
            func,
            expr: e,
            alias,
        } => {
            format!(
                "({}({}{}) AS ?{alias})",
                func.keyword(),
                distinct_marker(*func),
                expr(e)
            )
        }
    }
}

fn distinct_marker(func: AggFunc) -> &'static str {
    if func == AggFunc::CountDistinct {
        "DISTINCT "
    } else {
        ""
    }
}

fn term_pattern(tp: &TermPattern) -> String {
    match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Iri(iri) => format!("<{iri}>"),
        TermPattern::Literal(l) => l.to_string(),
    }
}

fn predicate(p: &Predicate) -> String {
    match p {
        Predicate::Var(v) => format!("?{v}"),
        Predicate::Path(path) => path
            .iter()
            .map(|iri| format!("<{iri}>"))
            .collect::<Vec<_>>()
            .join(" / "),
    }
}

/// Renders an expression with explicit parentheses around binary operators,
/// which keeps precedence unambiguous under re-parsing.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Var(v) => format!("?{v}"),
        Expr::Iri(iri) => format!("<{iri}>"),
        Expr::Literal(l) => l.to_string(),
        Expr::Number(n) => crate::value::format_number(*n),
        Expr::Bool(b) => b.to_string(),
        Expr::Not(inner) => format!("!({})", expr(inner)),
        Expr::And(a, b) => format!("({} && {})", expr(a), expr(b)),
        Expr::Or(a, b) => format!("({} || {})", expr(a), expr(b)),
        Expr::Cmp(a, op, b) => format!("({} {} {})", expr(a), op.symbol(), expr(b)),
        Expr::Arith(a, op, b) => format!("({} {} {})", expr(a), op.symbol(), expr(b)),
        Expr::In(a, list) => {
            let items: Vec<String> = list.iter().map(expr).collect();
            format!("({} IN ({}))", expr(a), items.join(", "))
        }
        Expr::Call(f, args) => {
            let items: Vec<String> = args.iter().map(expr).collect();
            format!("{}({})", f.keyword(), items.join(", "))
        }
        Expr::Agg(f, inner) => format!("{}({}{})", f.keyword(), distinct_marker(*f), expr(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(text: &str) {
        let q1 = parse_query(text).expect("parse original");
        let printed = query_to_sparql(&q1);
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert_eq!(q1, q2, "printed form: {printed}");
    }

    #[test]
    fn round_trips_figure2_style_query() {
        round_trip(
            "SELECT ?origin ?dest (SUM(?v) AS ?total) WHERE {
                ?obs <http://ex/Country_Origin> / <http://ex/In_Continent> ?origin .
                ?obs <http://ex/Country_Destination> ?dest .
                ?obs <http://ex/Num_Applicants> ?v .
            } GROUP BY ?origin ?dest",
        );
    }

    #[test]
    fn round_trips_filters_and_modifiers() {
        round_trip(
            r#"SELECT DISTINCT ?x (COUNT(?y) AS ?n) WHERE {
                ?x <http://ex/p> ?y .
                FILTER((?y > 3) && (?y <= 10) || !(?y = 7))
                FILTER(?x IN (<http://ex/a>, <http://ex/b>))
                FILTER(CONTAINS(LCASE(STR(?x)), "ber"))
            } GROUP BY ?x HAVING(SUM(?y) > 100) ORDER BY DESC(?n) ASC(?x) LIMIT 5 OFFSET 2"#,
        );
    }

    #[test]
    fn round_trips_ask_and_pred_vars() {
        round_trip("ASK WHERE { ?s <http://ex/p> ?o }");
        round_trip("SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
    }

    #[test]
    fn round_trips_literals() {
        round_trip(
            r#"SELECT ?x WHERE { ?x <http://ex/label> "Germany" . ?x <http://ex/n> "4"^^<http://www.w3.org/2001/XMLSchema#integer> . ?x <http://ex/l> "Wien"@de }"#,
        );
    }

    #[test]
    fn printed_form_is_readable() {
        let q = parse_query(
            "SELECT ?d (SUM(?v) AS ?total) WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/m> ?v } GROUP BY ?d",
        )
        .expect("parse");
        let text = query_to_sparql(&q);
        assert!(text.starts_with("SELECT ?d (SUM(?v) AS ?total) WHERE {"));
        assert!(text.contains("?o <http://ex/dest> ?d ."));
        assert!(text.ends_with("GROUP BY ?d"));
    }
}
