//! The `sharding` experiment: scatter-gather speedup of the
//! [`ShardedEndpoint`] over hash-partitioned shards with injected remote
//! latency (`bench_results/sharding.json`).
//!
//! Each shard stands in for a remote SPARQL endpoint: every sub-query pays
//! a fixed round-trip latency plus a per-result-row transfer cost. With the
//! fact triples hash-partitioned, each shard returns only its share of the
//! rows, and the scatter overlaps the shards' round-trip + transfer time —
//! so wall time shrinks with the shard count even though the total work is
//! unchanged (this parallelizes *waiting*, exactly like the async ticket
//! fan-out in the `trace` experiment, so it holds on any core count).
//!
//! Every configuration is differentially checked against a latency-free
//! [`LocalEndpoint`] on the unpartitioned graph (the `identical` flag), the
//! per-shard load skew of the partitioning is reported, and the per-shard
//! `shard_busy` metrics are verified to surface in the Prometheus
//! exposition.

use crate::report::{fmt_duration, Table};
use re2x_obs::{prometheus_exposition, Metrics};
use re2x_sparql::{
    parse_query, reference_solutions, LocalEndpoint, Query, Route, ShardedEndpoint, SparqlEndpoint,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard counts swept by the experiment.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One swept configuration.
pub struct ShardingRow {
    /// Number of shards.
    pub shards: usize,
    /// Wall time for the whole workload.
    pub wall: Duration,
    /// Wall time of the 1-shard configuration over this one.
    pub speedup: f64,
    /// Fact-partitioning load skew (max shard / mean, 1.0 = balanced).
    pub skew: f64,
    /// Largest per-shard share of the scattered result rows (max shard /
    /// mean over row counts) — the runtime analogue of `skew`.
    pub row_skew: f64,
    /// All workload results byte-identical to the latency-free local
    /// reference.
    pub identical: bool,
    /// Queries routed through scatter-gather (the rest used the replica).
    pub scattered: u64,
}

/// Report of the sharding sweep.
pub struct ShardingReport {
    /// Injected per-query round-trip latency.
    pub injected: Duration,
    /// Injected per-result-row transfer latency.
    pub per_row: Duration,
    /// Observation count of the generated dataset.
    pub observations: usize,
    /// Number of workload queries.
    pub queries: usize,
    /// One row per swept shard count.
    pub rows: Vec<ShardingRow>,
    /// `shard_busy{shard="…"}` gauges were present in the Prometheus
    /// exposition after the sweep.
    pub shard_busy_exposed: bool,
}

impl ShardingReport {
    /// The speedup at a given shard count (0.0 if that count wasn't swept).
    pub fn speedup_at(&self, shards: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.shards == shards)
            .map_or(0.0, |r| r.speedup)
    }

    /// All configurations produced reference-identical results.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Machine-readable report (`bench_results/sharding.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"injected_latency_us\": {},",
            self.injected.as_micros()
        );
        let _ = writeln!(out, "  \"row_latency_ns\": {},", self.per_row.as_nanos());
        let _ = writeln!(out, "  \"observations\": {},", self.observations);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"all_identical\": {},", self.all_identical());
        let _ = writeln!(
            out,
            "  \"shard_busy_exposed\": {},",
            self.shard_busy_exposed
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"shards\": {}, \"wall_us\": {}, \"speedup\": {:.2}, \
                 \"skew\": {:.3}, \"row_skew\": {:.3}, \"identical\": {}, \
                 \"scattered\": {}}}{comma}",
                row.shards,
                row.wall.as_micros(),
                row.speedup,
                row.skew,
                row.row_skew,
                row.identical,
                row.scattered,
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable summary table.
    pub fn summary(&self) -> String {
        let mut table = Table::new(["shards", "wall", "speedup", "skew", "row skew", "identical"]);
        for row in &self.rows {
            table.row([
                row.shards.to_string(),
                fmt_duration(row.wall),
                format!("{:.2}x", row.speedup),
                format!("{:.3}", row.skew),
                format!("{:.3}", row.row_skew),
                row.identical.to_string(),
            ]);
        }
        let mut out = table.render();
        let _ = writeln!(
            out,
            "\n{} workload queries, {} µs round-trip + {} ns/row injected per shard; \
             shard_busy in exposition: {}",
            self.queries,
            self.injected.as_micros(),
            self.per_row.as_nanos(),
            self.shard_busy_exposed,
        );
        out
    }
}

/// The scatter-heavy workload: mostly row-heavy shapes (fine-grained
/// grouping, full scans) where the per-row transfer cost dominates and
/// partitioning genuinely divides it, plus the coarse aggregates of the
/// figure experiments.
fn workload(dataset: &re2x_datagen::common::Dataset) -> Vec<Query> {
    let ns = {
        let dim = &dataset.dimension_predicates[0];
        dim[..dim.rfind('/').expect("namespace") + 1].to_owned()
    };
    let measure = format!("{ns}numApplicants");
    let dim0 = &dataset.dimension_predicates[0];
    let dim1 = &dataset.dimension_predicates[1];
    let rollup = &dataset.rollup_predicates[0];
    [
        // One group per observation: the gather receives ~observations rows.
        format!("SELECT ?o (SUM(?m) AS ?total) WHERE {{ ?o <{measure}> ?m }} GROUP BY ?o"),
        // Full fact scan with two dimensions bound.
        format!("SELECT ?o ?a ?b WHERE {{ ?o <{dim0}> ?a . ?o <{dim1}> ?b }}"),
        // Fine-grained two-dimensional cube slice.
        format!(
            "SELECT ?a ?b (SUM(?m) AS ?total) (COUNT(?o) AS ?n) WHERE {{
                ?o <{dim0}> ?a . ?o <{dim1}> ?b . ?o <{measure}> ?m
             }} GROUP BY ?a ?b"
        ),
        // Coarse aggregates (cheap on transfer; dominated by round-trip).
        format!(
            "SELECT ?a (AVG(?m) AS ?mean) WHERE {{ ?o <{dim0}> ?a . ?o <{measure}> ?m }}
             GROUP BY ?a ORDER BY DESC(?mean) ?a"
        ),
        format!(
            "SELECT ?up (SUM(?m) AS ?total) WHERE {{
                ?o <{dim0}> / <{rollup}> ?up . ?o <{measure}> ?m
             }} GROUP BY ?up ORDER BY ?up"
        ),
        format!("SELECT ?o ?m WHERE {{ ?o <{measure}> ?m }} ORDER BY DESC(?m) ?o LIMIT 50"),
        format!("SELECT DISTINCT ?a WHERE {{ ?o <{dim0}> ?a }} ORDER BY ?a"),
    ]
    .into_iter()
    .map(|text| parse_query(&text).expect("workload query parses"))
    .collect()
}

/// Runs the sweep on a eurostat-shaped dataset of `observations` facts with
/// `injected` round-trip and `per_row` transfer latency per shard query.
pub fn run_with(
    observations: usize,
    seed: u64,
    injected: Duration,
    per_row: Duration,
) -> ShardingReport {
    let dataset = re2x_datagen::eurostat::generate(observations, seed);
    let queries = workload(&dataset);
    // Latency-free local endpoint: the correctness reference.
    let reference = LocalEndpoint::new(dataset.graph.clone());

    let mut rows: Vec<ShardingRow> = Vec::new();
    let mut shard_busy_exposed = true;
    for &n in &SHARD_COUNTS {
        let metrics = Arc::new(Metrics::new());
        let endpoint = ShardedEndpoint::with_observation_class(
            dataset.graph.clone(),
            &dataset.observation_class,
            n,
        )
        .with_latency(injected)
        .with_row_latency(per_row)
        .with_metrics(Arc::clone(&metrics));
        let skew = endpoint.layout().skew();

        let mut identical = true;
        let start = Instant::now();
        let results: Vec<_> = queries
            .iter()
            .map(|q| endpoint.select(q).expect("workload query evaluates"))
            .collect();
        let wall = start.elapsed();
        // Differential check outside the timed region.
        for (query, got) in queries.iter().zip(&results) {
            let want = match endpoint.route(query) {
                Route::Scatter => reference_solutions(&reference, query),
                Route::Replica => reference.select(query),
            }
            .expect("reference evaluates");
            identical &= *got == want;
        }
        let row_counts: Vec<u64> = (0..n)
            .map(|i| endpoint.shard_stats(i).rows_returned)
            .collect();
        let total_rows: u64 = row_counts.iter().sum();
        let row_skew = if total_rows == 0 {
            1.0
        } else {
            let mean = total_rows as f64 / n as f64;
            *row_counts.iter().max().expect("non-empty") as f64 / mean
        };
        let exposition = prometheus_exposition(&metrics.snapshot(), &[]);
        shard_busy_exposed &=
            (0..n).all(|i| exposition.contains(&format!("shard_busy{{shard=\"{i}\"}}")));

        rows.push(ShardingRow {
            shards: n,
            wall,
            speedup: 0.0,
            skew,
            row_skew,
            identical,
            scattered: endpoint.scatter_count(),
        });
    }
    let baseline = rows[0].wall;
    for row in &mut rows {
        row.speedup = if row.wall.is_zero() {
            0.0
        } else {
            baseline.as_secs_f64() / row.wall.as_secs_f64()
        };
    }
    ShardingReport {
        injected,
        per_row,
        observations,
        queries: queries.len(),
        rows,
        shard_busy_exposed,
    }
}

/// The headline configuration: 2 ms round-trip + 5 µs/row, eurostat facts.
pub fn run(observations: usize, seed: u64) -> ShardingReport {
    run_with(
        observations,
        seed,
        Duration::from_millis(2),
        Duration::from_micros(5),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_identical_and_speeds_up() {
        // Elevated per-row latency so the injected waiting — the thing
        // partitioning divides — dominates evaluation compute even in
        // unoptimized debug builds on a single core.
        let report = run_with(
            1_000,
            7,
            Duration::from_millis(1),
            Duration::from_micros(100),
        );
        assert!(report.all_identical());
        assert!(report.shard_busy_exposed);
        assert_eq!(report.rows.len(), SHARD_COUNTS.len());
        assert!(
            report.speedup_at(4) > 1.2,
            "4-shard speedup {:.2}",
            report.speedup_at(4)
        );
        let json = report.to_json();
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"shards\": 8"));
    }
}
