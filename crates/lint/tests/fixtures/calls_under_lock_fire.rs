//! no-calls-under-lock FIRE fixture: an endpoint query, a bus publish,
//! a blocking write, and a `std::fs` touch all happen while the
//! `fx.stats` guard is still live.

use std::sync::Mutex;

pub struct Guarded {
    // lock-order: fx.stats
    stats: Mutex<u64>,
}

impl Guarded {
    pub fn query_under_lock(&self, endpoint: &dyn Endpoint, query: &str) -> u64 {
        let guard = lock_or_recover("fx.stats", &self.stats);
        let rows = endpoint.select(query);
        *guard + rows
    }

    pub fn publish_under_lock(&self, bus: &Bus, event: u64) {
        let guard = lock_or_recover("fx.stats", &self.stats);
        bus.publish(*guard + event);
        drop(guard);
        bus.publish(event);
    }

    pub fn write_under_lock(&self, sink: &mut Sink) {
        let guard = lock_or_recover("fx.stats", &self.stats);
        sink.write_all(&guard.to_le_bytes());
    }

    pub fn persist_under_lock(&self, path: &str) -> u64 {
        let guard = lock_or_recover("fx.stats", &self.stats);
        let bytes = std::fs::read(path);
        *guard + bytes.len() as u64
    }
}
