//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors raised while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A syntax error while parsing a serialization format.
    Syntax {
        /// 1-based line number where the error was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix {
        /// 1-based line number where the error was detected.
        line: usize,
        /// The undeclared prefix label.
        prefix: String,
    },
    /// A term id was used against an interner that does not know it.
    UnknownTerm(u32),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            RdfError::UnknownPrefix { line, prefix } => {
                write!(f, "unknown prefix '{prefix}:' at line {line}")
            }
            RdfError::UnknownTerm(id) => write!(f, "unknown term id {id}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl RdfError {
    /// Convenience constructor for syntax errors.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        RdfError::Syntax {
            line,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = RdfError::syntax(3, "unexpected '.'");
        assert_eq!(e.to_string(), "syntax error at line 3: unexpected '.'");
        let e = RdfError::UnknownPrefix {
            line: 7,
            prefix: "ex".into(),
        };
        assert_eq!(e.to_string(), "unknown prefix 'ex:' at line 7");
        assert_eq!(RdfError::UnknownTerm(9).to_string(), "unknown term id 9");
    }
}
