//! Vectorized BGP execution: sorted-ID merge joins over columnar batches.
//!
//! The row executor ([`super::Compiled::eval_block`]) extends bindings one
//! row at a time, probing the store's hash indexes per row. For flat basic
//! graph patterns — no FILTERs, no OPTIONAL/UNION children, i.e. the shape
//! of every OLAP star query RE²xOLAP generates — this module evaluates the
//! planned pattern chain over a [`Batch`] instead: a struct-of-arrays
//! layout with one dense `Vec<TermId>` column per bound variable.
//!
//! Per pattern, the kernel picks one of three strategies:
//!
//! 1. **Semijoin** (no new variable): every position resolves to a
//!    constant or an already-bound column, so the pattern only filters the
//!    batch. With one variable position the sorted posting list is
//!    intersected against the column — a two-pointer *merge intersection*
//!    when the column itself is sorted, per-row binary search otherwise.
//! 2. **Extend** (exactly one new variable): the matching posting list
//!    (`objects`/`subjects`/`predicates_between` — sorted by id, an
//!    invariant `re2x-rdf` maintains on insert) is appended wholesale with
//!    `extend_from_slice`, and survivor columns are gathered once per
//!    batch rather than cloned per row. When the two resolved positions
//!    are constants the list is fetched once for the whole batch.
//! 3. **Fallback** (several new variables, or a variable repeated within
//!    the pattern): per-row enumeration through the same
//!    [`re2x_rdf::Graph::for_each_matching_until`] walk the row executor
//!    uses.
//!
//! All three enumerate matches in exactly the index order the row
//! executor sees, so the produced rows are *byte-identical* to
//! [`super::Compiled::eval_block`] — the differential suites
//! (`tests/plan_differential.rs`) hold this across datasets, plan modes,
//! and `ShardedEndpoint` composition.

use super::{Compiled, FlatPattern, Slot};
use re2x_rdf::{Graph, TermId};

/// Whether the compiled query's WHERE tree is a shape the columnar kernel
/// covers: a single flat block with no filters and no children. Everything
/// else (FILTER-interleaved blocks, OPTIONAL/UNION, property-path-free
/// existence probes) stays on the row executor.
pub(super) fn eligible(compiled: &Compiled) -> bool {
    compiled.root.children.is_empty() && compiled.root.filters.is_empty()
}

/// Runs the root block's planned pattern chain over columnar batches,
/// returning binding rows over the variable registry (same contract as
/// [`super::Compiled::run_bgp`]).
pub(super) fn run(compiled: &Compiled, graph: &Graph) -> Vec<Vec<Option<TermId>>> {
    let nvars = compiled.var_names.len();
    let prebound = vec![false; nvars];
    let order = compiled.plan_block(graph, &compiled.root, &prebound);
    let mut batch = Batch::seed(nvars);
    for &pi in &order {
        batch = extend(graph, &batch, compiled.root.patterns[pi]);
        if batch.len == 0 {
            break;
        }
    }
    batch.into_rows()
}

/// A columnar batch of partial solutions: one dense column of interned
/// term ids per *bound* variable (`None` for variables not yet bound by
/// any pattern), all columns of identical length.
struct Batch {
    cols: Vec<Option<Vec<TermId>>>,
    len: usize,
}

impl Batch {
    /// The seed batch: a single row binding nothing (the join identity,
    /// mirroring the row executor's all-`None` seed row).
    fn seed(nvars: usize) -> Self {
        Batch {
            cols: vec![None; nvars],
            len: 1,
        }
    }

    fn empty(nvars: usize) -> Self {
        Batch {
            cols: vec![None; nvars],
            len: 0,
        }
    }

    /// Materializes the batch back into the row representation the
    /// projection layer consumes.
    fn into_rows(self) -> Vec<Vec<Option<TermId>>> {
        let mut rows = vec![vec![None; self.cols.len()]; self.len];
        for (v, col) in self.cols.iter().enumerate() {
            if let Some(col) = col {
                for (row, &id) in rows.iter_mut().zip(col) {
                    row[v] = Some(id);
                }
            }
        }
        rows
    }
}

/// A pattern slot resolved against the batch's bound columns.
#[derive(Clone, Copy, PartialEq)]
enum RSlot {
    /// A constant term id.
    Const(TermId),
    /// A variable with a bound column.
    Col(usize),
    /// A variable this pattern binds for the first time.
    New(usize),
    /// A constant absent from the graph: the pattern cannot match.
    Absent,
}

fn resolve(slot: Slot, batch: &Batch) -> RSlot {
    match slot {
        Slot::Const(id) => RSlot::Const(id),
        Slot::Absent => RSlot::Absent,
        Slot::Var(v) if batch.cols[v].is_some() => RSlot::Col(v),
        Slot::Var(v) => RSlot::New(v),
    }
}

/// Joins one pattern into the batch.
fn extend(graph: &Graph, batch: &Batch, pattern: FlatPattern) -> Batch {
    let nvars = batch.cols.len();
    let s = resolve(pattern.s, batch);
    let p = resolve(pattern.p, batch);
    let o = resolve(pattern.o, batch);
    if [s, p, o].contains(&RSlot::Absent) {
        return Batch::empty(nvars);
    }
    let news: Vec<usize> = [s, p, o]
        .iter()
        .filter_map(|r| match r {
            RSlot::New(v) => Some(*v),
            _ => None,
        })
        .collect();
    let repeated_new = match news.as_slice() {
        [a, b] => a == b,
        [a, b, c] => a == b || b == c || a == c,
        _ => false,
    };
    match (news.len(), repeated_new) {
        (0, _) => semijoin(graph, batch, s, p, o),
        (1, false) => extend_one(graph, batch, s, p, o),
        _ => fallback(graph, batch, pattern),
    }
}

/// Reads the value a resolved slot takes on batch row `i`. Only the keyed
/// paths (semijoin, single-extension) call this, and they never pass
/// `New`/`Absent`; the `TermId(0)` placeholder on those arms keeps the
/// function panic-free, and would at worst turn a probe into a miss —
/// never fabricate a row.
fn at(batch: &Batch, slot: RSlot, i: usize) -> TermId {
    match slot {
        RSlot::Const(id) => id,
        RSlot::Col(v) => batch.cols[v].as_ref().map_or(TermId(0), |col| col[i]),
        RSlot::New(_) | RSlot::Absent => TermId(0),
    }
}

/// No new variable: the pattern is a pure filter over existing rows.
fn semijoin(graph: &Graph, batch: &Batch, s: RSlot, p: RSlot, o: RSlot) -> Batch {
    let mut keep: Vec<bool> = Vec::with_capacity(batch.len);
    // one variable position against two constants: intersect the sorted
    // posting list with the column directly
    let single = match (s, p, o) {
        (RSlot::Col(v), RSlot::Const(pc), RSlot::Const(oc)) => Some((v, graph.subjects(pc, oc))),
        (RSlot::Const(sc), RSlot::Const(pc), RSlot::Col(v)) => Some((v, graph.objects(sc, pc))),
        (RSlot::Const(sc), RSlot::Col(v), RSlot::Const(oc)) => {
            Some((v, graph.predicates_between(sc, oc)))
        }
        _ => None,
    };
    if let Some((v, list)) = single {
        let col = batch.cols[v].as_deref().unwrap_or(&[]);
        if col.is_sorted() {
            // merge intersection: one forward pass over both sorted sides
            let mut j = 0usize;
            for &id in col {
                while j < list.len() && list[j] < id {
                    j += 1;
                }
                keep.push(j < list.len() && list[j] == id);
            }
        } else {
            for &id in col {
                keep.push(list.binary_search(&id).is_ok());
            }
        }
    } else {
        for i in 0..batch.len {
            keep.push(graph.contains_ids(at(batch, s, i), at(batch, p, i), at(batch, o, i)));
        }
    }
    gather(batch, &keep_to_sel(&keep), Vec::new())
}

fn keep_to_sel(keep: &[bool]) -> Vec<usize> {
    keep.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// Exactly one fresh variable: append each row's sorted match list in one
/// `extend_from_slice`, recording the source row per output row.
fn extend_one(graph: &Graph, batch: &Batch, s: RSlot, p: RSlot, o: RSlot) -> Batch {
    // which position holds the fresh variable (New in at most one slot)
    let new_var = match (s, p, o) {
        (_, _, RSlot::New(v)) | (RSlot::New(v), _, _) | (_, RSlot::New(v), _) => v,
        // extend() dispatches here only with exactly one New slot
        _ => return gather(batch, &[], Vec::new()),
    };
    let mut sel: Vec<usize> = Vec::new();
    let mut new_col: Vec<TermId> = Vec::new();
    for i in 0..batch.len {
        let list: &[TermId] = match (s, p, o) {
            (_, _, RSlot::New(_)) => graph.objects(at(batch, s, i), at(batch, p, i)),
            (RSlot::New(_), _, _) => graph.subjects(at(batch, p, i), at(batch, o, i)),
            (_, RSlot::New(_), _) => graph.predicates_between(at(batch, s, i), at(batch, o, i)),
            _ => &[],
        };
        if list.is_empty() {
            continue;
        }
        new_col.extend_from_slice(list);
        sel.extend(std::iter::repeat_n(i, list.len()));
    }
    gather(batch, &sel, vec![(new_var, new_col)])
}

/// General per-row fallback mirroring [`super::Compiled::extend_row`]:
/// used for patterns with two or more fresh variables or a variable
/// repeated inside the pattern. Enumeration order equals the row
/// executor's, so byte-identity is preserved.
fn fallback(graph: &Graph, batch: &Batch, pattern: FlatPattern) -> Batch {
    let slots = [pattern.s, pattern.p, pattern.o];
    let mut new_vars: Vec<usize> = slots
        .iter()
        .filter_map(|slot| match slot {
            Slot::Var(v) if batch.cols[*v].is_none() => Some(*v),
            _ => None,
        })
        .collect();
    new_vars.sort_unstable();
    new_vars.dedup();
    let mut sel: Vec<usize> = Vec::new();
    let mut new_cols: Vec<(usize, Vec<TermId>)> =
        new_vars.iter().map(|&v| (v, Vec::new())).collect();
    let mut scratch: Vec<Option<TermId>> = vec![None; new_vars.len()];
    for i in 0..batch.len {
        let fixed = |slot: Slot| match slot {
            Slot::Const(id) => Some(id),
            Slot::Var(v) => batch.cols[v].as_ref().map(|col| col[i]),
            Slot::Absent => None, // filtered out by extend()
        };
        graph.for_each_matching(fixed(pattern.s), fixed(pattern.p), fixed(pattern.o), |t| {
            scratch.iter_mut().for_each(|c| *c = None);
            for (slot, value) in [(pattern.s, t.s), (pattern.p, t.p), (pattern.o, t.o)] {
                if let Slot::Var(v) = slot {
                    if let Ok(k) = new_vars.binary_search(&v) {
                        match scratch[k] {
                            Some(existing) if existing != value => return, // inconsistent
                            _ => scratch[k] = Some(value),
                        }
                    }
                }
            }
            sel.push(i);
            for (k, cell) in scratch.iter().enumerate() {
                if let Some(id) = *cell {
                    new_cols[k].1.push(id);
                }
            }
        });
    }
    gather(batch, &sel, new_cols)
}

/// Builds the successor batch: existing columns gathered through `sel`
/// (source row index per output row), plus freshly bound columns.
fn gather(batch: &Batch, sel: &[usize], new_cols: Vec<(usize, Vec<TermId>)>) -> Batch {
    let mut cols: Vec<Option<Vec<TermId>>> = vec![None; batch.cols.len()];
    for (v, col) in batch.cols.iter().enumerate() {
        if let Some(col) = col {
            cols[v] = Some(sel.iter().map(|&i| col[i]).collect());
        }
    }
    for (v, col) in new_cols {
        debug_assert_eq!(col.len(), sel.len());
        cols[v] = Some(col);
    }
    Batch {
        cols,
        len: sel.len(),
    }
}
