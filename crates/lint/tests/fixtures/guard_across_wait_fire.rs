//! guard-across-wait FIRE fixture: an undeclared nested acquisition
//! (twice) and a condvar wait entered with a second guard still held.

use std::sync::{Condvar, Mutex};

pub struct Pair {
    // lock-order: fx.left
    left: Mutex<u64>,
    // lock-order: fx.right
    right: Mutex<u64>,
    cv: Condvar,
}

impl Pair {
    pub fn nested(&self) -> u64 {
        let outer = lock_or_recover("fx.left", &self.left);
        let inner = lock_or_recover("fx.right", &self.right);
        *outer + *inner
    }

    pub fn wait_holding(&self) -> u64 {
        let held = lock_or_recover("fx.left", &self.left);
        let mut slot = lock_or_recover("fx.right", &self.right);
        slot = wait_or_recover(&self.cv, slot);
        *held + *slot
    }
}
