//! Well-known vocabulary IRIs used across the system.

/// The RDF core vocabulary.
pub mod rdf {
    /// `rdf:type`.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdf:langString`, the implicit datatype of language-tagged literals.
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

/// The RDF Schema vocabulary.
pub mod rdfs {
    /// `rdfs:label`, the canonical human-readable name predicate.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:comment`.
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
}

/// XML Schema datatypes.
pub mod xsd {
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:float`.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// `xsd:long`.
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    /// `xsd:int`.
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:date`.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// `xsd:gYear`.
    pub const G_YEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";

    /// `true` for the XSD numeric datatypes whose lexical forms we can
    /// aggregate over.
    pub fn is_numeric(datatype: &str) -> bool {
        matches!(datatype, INTEGER | DECIMAL | DOUBLE | FLOAT | LONG | INT)
    }
}

/// The W3C RDF Data Cube vocabulary, the standard way statistical data is
/// published in RDF and the default observation class of the paper.
pub mod qb {
    /// `qb:Observation` — the class of fact nodes.
    pub const OBSERVATION: &str = "http://purl.org/linked-data/cube#Observation";
    /// `qb:DataSet`.
    pub const DATA_SET: &str = "http://purl.org/linked-data/cube#DataSet";
    /// `qb:dataSet` — links observations to their dataset.
    pub const DATASET_PROP: &str = "http://purl.org/linked-data/cube#dataSet";
    /// `qb:DimensionProperty`.
    pub const DIMENSION_PROPERTY: &str = "http://purl.org/linked-data/cube#DimensionProperty";
    /// `qb:MeasureProperty`.
    pub const MEASURE_PROPERTY: &str = "http://purl.org/linked-data/cube#MeasureProperty";
    /// `qb:AttributeProperty`.
    pub const ATTRIBUTE_PROPERTY: &str = "http://purl.org/linked-data/cube#AttributeProperty";
}

/// The QB4OLAP extension vocabulary (dimension hierarchies and levels).
pub mod qb4o {
    /// `qb4o:LevelProperty` — the class of hierarchy levels.
    pub const LEVEL_PROPERTY: &str = "http://purl.org/qb4olap/cubes#LevelProperty";
    /// `qb4o:memberOf` — links a member to its level.
    pub const MEMBER_OF: &str = "http://purl.org/qb4olap/cubes#memberOf";
    /// `qb4o:inHierarchy`.
    pub const IN_HIERARCHY: &str = "http://purl.org/qb4olap/cubes#inHierarchy";
    /// `qb4o:parentLevel` — coarser-level link between levels.
    pub const PARENT_LEVEL: &str = "http://purl.org/qb4olap/cubes#parentLevel";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_datatype_classification() {
        assert!(xsd::is_numeric(xsd::INTEGER));
        assert!(xsd::is_numeric(xsd::DOUBLE));
        assert!(xsd::is_numeric(xsd::DECIMAL));
        assert!(!xsd::is_numeric(xsd::STRING));
        assert!(!xsd::is_numeric(xsd::DATE));
        assert!(!xsd::is_numeric(xsd::BOOLEAN));
    }

    #[test]
    fn vocab_iris_are_well_formed() {
        for iri in [
            rdf::TYPE,
            rdfs::LABEL,
            qb::OBSERVATION,
            qb4o::LEVEL_PROPERTY,
        ] {
            assert!(iri.starts_with("http://"), "{iri}");
            assert!(!iri.contains(' '));
        }
    }
}
