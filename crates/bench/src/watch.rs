//! The `watch` experiment: replays a recorded JSONL event log through the
//! `re2x-tui` dashboard. Two modes:
//!
//! - **headless** (the CI path): render the whole replay as a plain-text
//!   frame script and byte-compare it against a committed golden — no
//!   terminal, no pacing, no wall clock in the render path.
//! - **live**: pace the frames by their event-time boundaries (scaled by
//!   `--speed`) and repaint ANSI frames in place, which is what the
//!   dashboard looks like attached to a real server.
//!
//! The default input is the deterministic scripted-session fixture the
//! tui golden tests pin, so `repro watch --headless` needs no arguments.

use re2x_obs::{parse_bus_events, BusEvent};
use re2x_tui::{frames, render_script, RenderOptions, FRAME_INTERVAL};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// What to replay and how.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// JSONL event log; `None` uses the committed scripted-session fixture.
    pub input: Option<PathBuf>,
    /// Golden frame script to compare against in headless mode; `None`
    /// uses the committed golden matching the default fixture.
    pub golden: Option<PathBuf>,
    /// Compare against the golden instead of playing live.
    pub headless: bool,
    /// Paint paced ANSI frames to stdout.
    pub live: bool,
    /// Live playback speed multiplier (2.0 = twice as fast).
    pub speed: f64,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            input: None,
            golden: None,
            headless: false,
            live: false,
            speed: 1.0,
        }
    }
}

/// Result of a replay.
pub struct WatchOutcome {
    /// Bus events parsed from the input log.
    pub events: usize,
    /// Frames the replay produced (interval boundaries + final).
    pub frames: usize,
    /// The full plain-text frame script.
    pub script: String,
    /// Headless mode only: did the script match the golden byte-for-byte?
    pub golden_matched: Option<bool>,
}

impl WatchOutcome {
    /// Human-readable report body: the frame script plus a trailer line.
    pub fn summary(&self) -> String {
        let mut out = self.script.clone();
        let _ = writeln!(
            out,
            "\n{} events replayed into {} frames at {}ms cadence{}",
            self.events,
            self.frames,
            FRAME_INTERVAL.as_millis(),
            match self.golden_matched {
                Some(true) => "; golden frames matched byte-for-byte",
                Some(false) => "; GOLDEN FRAME MISMATCH",
                None => "",
            },
        );
        out
    }
}

/// The committed scripted-session fixture (pinned by the tui golden tests).
pub fn default_input() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../tui/tests/fixtures/watch_session.jsonl"
    ))
}

/// The committed golden frame script matching [`default_input`].
pub fn default_golden() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../tui/tests/fixtures/watch_frames.golden.txt"
    ))
}

fn load_events(path: &Path) -> Result<Vec<BusEvent>, String> {
    let jsonl = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_bus_events(&jsonl).map_err(|e| format!("{}: {e}", path.display()))
}

/// Runs the replay. `Err` is reserved for unusable inputs; a golden
/// mismatch comes back as `golden_matched == Some(false)` so the caller
/// can print the script before failing.
pub fn run(config: &WatchConfig) -> Result<WatchOutcome, String> {
    let input = config.input.clone().unwrap_or_else(default_input);
    let events = load_events(&input)?;
    let opts = RenderOptions::default();
    let script = render_script(&events, FRAME_INTERVAL, opts);
    let all = frames(&events, FRAME_INTERVAL, opts);

    let golden_matched = if config.headless {
        let golden = config.golden.clone().unwrap_or_else(default_golden);
        let want = std::fs::read_to_string(&golden)
            .map_err(|e| format!("cannot read golden {}: {e}", golden.display()))?;
        Some(want == script)
    } else {
        None
    };

    if config.live {
        play(&all, config.speed);
    }

    Ok(WatchOutcome {
        events: events.len(),
        frames: all.len(),
        script,
        golden_matched,
    })
}

/// Paints the frames in place, pacing by event-time boundary deltas.
fn play(all: &[(Duration, re2x_tui::Frame)], speed: f64) {
    let speed = if speed.is_finite() && speed > 0.0 {
        speed
    } else {
        1.0
    };
    let mut stdout = std::io::stdout();
    let mut previous = Duration::ZERO;
    print!("\u{1b}[2J"); // clear once; frames repaint in place from home
    for (boundary, frame) in all {
        std::thread::sleep(boundary.saturating_sub(previous).div_f64(speed));
        previous = *boundary;
        print!("{}", frame.to_ansi());
        let _ = stdout.flush();
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headless_replay_of_the_default_fixture_matches_its_golden() {
        let outcome = run(&WatchConfig {
            headless: true,
            ..WatchConfig::default()
        })
        .expect("fixture replays");
        assert_eq!(outcome.golden_matched, Some(true), "{}", outcome.script);
        assert!(outcome.frames > 1, "default fixture spans several frames");
        assert!(outcome.summary().contains("golden frames matched"));
    }

    #[test]
    fn missing_input_is_an_error_not_a_panic() {
        let outcome = run(&WatchConfig {
            input: Some(PathBuf::from("/nonexistent/events.jsonl")),
            ..WatchConfig::default()
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn a_mismatched_golden_is_reported_not_swallowed() {
        let dir = std::env::temp_dir().join("re2x_watch_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let golden = dir.join("wrong.golden.txt");
        std::fs::write(&golden, "not the frames\n").expect("write");
        let outcome = run(&WatchConfig {
            golden: Some(golden),
            headless: true,
            ..WatchConfig::default()
        })
        .expect("replays");
        assert_eq!(outcome.golden_matched, Some(false));
        assert!(outcome.summary().contains("GOLDEN FRAME MISMATCH"));
    }
}
