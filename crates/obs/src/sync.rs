//! Poison-tolerant lock acquisition.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while holding
//! the guard; every later `.lock().unwrap()` then panics too, cascading
//! one worker's failure into a session-wide kill — exactly what the
//! interactive loop must not do. For the workspace's locks the protected
//! state is counters, caches, and event buffers: all remain internally
//! consistent at every await-free critical-section boundary, so the right
//! recovery is to take the data and keep serving.
//!
//! [`lock_or_recover`] (and [`wait_or_recover`] for condvar loops) does
//! exactly that — acquire, and on poison strip the flag and hand the
//! guard back.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a panicking thread poisoned it.
pub fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Blocks on `condvar` releasing `guard`, recovering the reacquired guard
/// if the mutex was poisoned while this thread slept.
pub fn wait_or_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison<T: Send + 'static>(mutex: &Arc<Mutex<T>>) {
        let m = Arc::clone(mutex);
        let _ = std::thread::spawn(move || {
            let _guard = m.lock().expect("first lock");
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned(), "panicking holder must poison");
    }

    #[test]
    fn recovers_data_from_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(41));
        poison(&mutex);
        *lock_or_recover(&mutex) += 1;
        assert_eq!(*lock_or_recover(&mutex), 42);
    }

    #[test]
    fn unpoisoned_path_is_transparent() {
        let mutex = Mutex::new(String::from("a"));
        lock_or_recover(&mutex).push('b');
        assert_eq!(*lock_or_recover(&mutex), "ab");
    }

    #[test]
    fn wait_recovers_after_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (mutex, condvar) = &*pair;
                let mut ready = lock_or_recover(mutex);
                while !*ready {
                    ready = wait_or_recover(condvar, ready);
                }
            })
        };
        {
            let (mutex, condvar) = &*pair;
            // poison while the waiter sleeps…
            let m = Arc::clone(&pair);
            let _ = std::thread::spawn(move || {
                let _guard = m.0.lock().expect("lock");
                panic!("poison while waiter sleeps");
            })
            .join();
            assert!(mutex.is_poisoned());
            // …then flag readiness through the recovered guard
            *lock_or_recover(mutex) = true;
            condvar.notify_all();
        }
        waiter.join().expect("waiter survives the poisoned mutex");
    }
}
