//! Interactive example-driven exploration shell — the full RE²xOLAP system
//! as a terminal application (Algorithm 2 with a human in the loop).
//!
//! ```sh
//! cargo run --release --example explore -- running
//! # or: eurostat | production | dbpedia | path/to/data.ttl <observation-class>
//! ```
//!
//! Commands (also usable non-interactively by piping them in):
//!
//! ```text
//! ex <kw> [, <kw> …]   synthesize queries from an example tuple
//! pick <n>             execute candidate/refinement n
//! dis | topk | perc | sim   list refinements of the current query
//! not <kw>             exclude members matching <kw> (negative example)
//! show                 print the current result set
//! sparql               print the current query as SPARQL
//! plan                 print the engine's evaluation plan for it
//! profile              print the dataset profile (dimensions, members)
//! transcript           print the session as a Markdown report
//! back                 backtrack one step
//! quit
//! ```

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_rdf::io::{parse_ntriples, parse_turtle};
use re2x_rdf::Graph;
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{
    exclude_negatives, profile, rank_interpretations, session_transcript, MatchMode, OlapQuery,
    RefineOp, Refinement, Session, SessionConfig,
};
use std::io::BufRead;

fn load(args: &[String]) -> Result<(Graph, String), Box<dyn std::error::Error>> {
    let source = args.first().map(String::as_str).unwrap_or("running");
    let qb = re2x_rdf::vocab::qb::OBSERVATION.to_owned();
    Ok(match source {
        "running" => (
            std::mem::take(&mut re2x_datagen::running::generate().graph),
            qb,
        ),
        "eurostat" => (
            std::mem::take(&mut re2x_datagen::eurostat::generate(5_000, 42).graph),
            qb,
        ),
        "production" => (
            std::mem::take(&mut re2x_datagen::production::generate(5_000, 42).graph),
            qb,
        ),
        "dbpedia" => (
            std::mem::take(&mut re2x_datagen::dbpedia::generate(5_000, 42).graph),
            "http://data.example.org/dbpedia/CreativeWork".to_owned(),
        ),
        path => {
            let class = args.get(1).cloned().unwrap_or(qb);
            let text = std::fs::read_to_string(path)?;
            let mut graph = Graph::new();
            if path.ends_with(".nt") {
                parse_ntriples(&text, &mut graph)?;
            } else {
                parse_turtle(&text, &mut graph)?;
            }
            (graph, class)
        }
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (graph, class) = load(&args)?;
    println!("loaded {} triples; bootstrapping …", graph.len());
    let endpoint = LocalEndpoint::new(graph);
    let report = bootstrap(&endpoint, &BootstrapConfig::new(&class))?;
    let schema = report.schema;
    let stats = schema.stats();
    println!(
        "schema: {} dimensions, {} measures, {} levels, {} members ({:?})",
        stats.dimensions, stats.measures, stats.levels, stats.members, report.elapsed
    );
    println!("type 'ex <keyword>[, <keyword>…]' to start, 'quit' to leave.\n");

    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    // candidates awaiting a `pick`: either synthesized queries or
    // refinements of the current step
    let mut pending_queries: Vec<OlapQuery> = Vec::new();
    let mut pending_refinements: Vec<Refinement> = Vec::new();

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        let line = line.trim();
        let (command, rest) = line.split_once(' ').unwrap_or((line, ""));
        let result = (|| -> Result<(), Box<dyn std::error::Error>> {
            match command {
                "" => {}
                "quit" | "exit" => std::process::exit(0),
                "ex" => {
                    let keywords: Vec<&str> = rest
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .collect();
                    if keywords.is_empty() {
                        println!("usage: ex <keyword>[, <keyword>…]");
                        return Ok(());
                    }
                    let outcome = session.synthesize(&keywords)?;
                    let ranked = rank_interpretations(&schema, outcome.queries);
                    pending_queries = ranked.into_iter().map(|r| r.query).collect();
                    pending_refinements.clear();
                    println!("{} interpretation(s):", pending_queries.len());
                    for (i, q) in pending_queries.iter().enumerate() {
                        println!("  [{i}] {}", q.description);
                    }
                    println!("pick one with 'pick <n>'");
                }
                "pick" => {
                    let n: usize = rest.trim().parse()?;
                    let query = if !pending_refinements.is_empty() {
                        pending_refinements
                            .get(n)
                            .ok_or("no such refinement")?
                            .query
                            .clone()
                    } else {
                        pending_queries.get(n).ok_or("no such candidate")?.clone()
                    };
                    pending_queries.clear();
                    pending_refinements.clear();
                    let step = session.choose(query)?;
                    println!("{} row(s):", step.solutions.len());
                    let mut preview = step.solutions.clone();
                    preview.rows.truncate(15);
                    println!("{}", preview.to_labeled_table(endpoint.graph()));
                }
                "dis" | "topk" | "perc" | "sim" => {
                    let op = match command {
                        "dis" => RefineOp::Disaggregate,
                        "topk" => RefineOp::TopK,
                        "perc" => RefineOp::Percentile,
                        _ => RefineOp::Similarity,
                    };
                    pending_refinements = session.refinements(op)?;
                    pending_queries.clear();
                    if pending_refinements.is_empty() {
                        println!("no {command} refinements apply here");
                    }
                    for (i, r) in pending_refinements.iter().enumerate() {
                        println!("  [{i}] {}", r.explanation);
                    }
                }
                "not" => {
                    let step = session.current().ok_or("run a query first")?;
                    let negatives: Vec<&str> = rest
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .collect();
                    let outcome = exclude_negatives(
                        &endpoint,
                        &schema,
                        &step.query,
                        &negatives,
                        MatchMode::Exact,
                    )?;
                    for (kw, member) in &outcome.excluded {
                        println!("excluding {kw} ({member})");
                    }
                    for kw in &outcome.inert {
                        println!("note: '{kw}' cannot appear in this view; nothing to exclude");
                    }
                    let step = session.choose(outcome.query)?;
                    println!("{} row(s) remain", step.solutions.len());
                }
                "show" => {
                    let step = session.current().ok_or("run a query first")?;
                    println!("{}", step.solutions.to_labeled_table(endpoint.graph()));
                }
                "sparql" => {
                    let step = session.current().ok_or("run a query first")?;
                    println!("{}", step.query.sparql());
                }
                "plan" => {
                    let step = session.current().ok_or("run a query first")?;
                    println!(
                        "{}",
                        re2x_sparql::explain(endpoint.graph(), &step.query.query)?
                    );
                }
                "profile" => {
                    println!("{}", profile(&endpoint, &schema)?.render());
                }
                "transcript" => {
                    println!("{}", session_transcript(&session, endpoint.graph()));
                }
                "back" => {
                    if session.backtrack() {
                        let step = session.current().expect("history non-empty");
                        println!(
                            "back to: {} ({} rows)",
                            step.query.description,
                            step.solutions.len()
                        );
                    } else {
                        println!("already at the first step");
                    }
                }
                other => println!("unknown command '{other}'"),
            }
            Ok(())
        })();
        if let Err(e) = result {
            println!("error: {e}");
        }
    }
    let m = session.metrics();
    println!(
        "\nsession: {} interactions, {} paths offered, {} tuples accessed",
        m.interactions, m.paths_offered, m.tuples_accessible
    );
    Ok(())
}
