//! Property-based tests of the store's core invariants: index agreement
//! under arbitrary insert/remove interleavings, serialization round-trips
//! for arbitrary terms, and text-index consistency.

use proptest::prelude::*;
use re2x_rdf::io::{parse_ntriples, to_ntriples};
use re2x_rdf::{Graph, Literal, Term};

// ---- generators -----------------------------------------------------------

fn arb_iri() -> impl Strategy<Value = Term> {
    // IRIs without angle brackets / whitespace / control characters
    "[a-zA-Z0-9_.#/:-]{1,24}".prop_map(|s| Term::iri(format!("http://ex/{s}")))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // simple strings incl. characters needing escapes
        "[ -~]{0,16}".prop_map(Literal::simple),
        any::<i64>().prop_map(Literal::integer),
        (-1.0e9f64..1.0e9).prop_map(Literal::double),
        ("[ -~]{1,8}", "[a-z]{2}").prop_map(|(s, l)| Literal::tagged(s, l)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => arb_iri(),
        1 => "[a-zA-Z0-9]{1,8}".prop_map(Term::blank),
        3 => arb_literal().prop_map(Term::from),
    ]
}

fn arb_triple() -> impl Strategy<Value = (Term, Term, Term)> {
    (arb_iri(), arb_iri(), arb_term())
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Term, Term, Term),
    /// Remove the i-th triple currently in the graph (mod size).
    RemoveNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => arb_triple().prop_map(|(s, p, o)| Op::Insert(s, p, o)),
            1 => (0usize..64).prop_map(Op::RemoveNth),
        ],
        1..60,
    )
}

// ---- properties -----------------------------------------------------------

proptest! {
    /// After any interleaving of inserts and removes, the graph agrees
    /// with a naive set-of-triples model on every access path.
    #[test]
    fn indexes_agree_with_set_model(ops in arb_ops()) {
        let mut graph = Graph::new();
        let mut model: Vec<(Term, Term, Term)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(s, p, o) => {
                    let inserted = graph.insert(s.clone(), p.clone(), o.clone());
                    let fresh = !model.contains(&(s.clone(), p.clone(), o.clone()));
                    prop_assert_eq!(inserted, fresh);
                    if fresh {
                        model.push((s, p, o));
                    }
                }
                Op::RemoveNth(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (s, p, o) = model.remove(i % model.len());
                    let sid = graph.term_id(&s).expect("inserted");
                    let pid = graph.term_id(&p).expect("inserted");
                    let oid = graph.term_id(&o).expect("inserted");
                    prop_assert!(graph.remove_ids(sid, pid, oid));
                }
            }
        }
        prop_assert_eq!(graph.len(), model.len());
        // every model triple is found through every single-bound pattern
        for (s, p, o) in &model {
            let sid = graph.term_id(s).expect("known");
            let pid = graph.term_id(p).expect("known");
            let oid = graph.term_id(o).expect("known");
            prop_assert!(graph.contains_ids(sid, pid, oid));
            prop_assert!(graph.objects(sid, pid).contains(&oid));
            prop_assert!(graph.subjects(pid, oid).contains(&sid));
            prop_assert!(graph.predicates_between(sid, oid).contains(&pid));
        }
        // pattern counts are consistent with full materialization
        prop_assert_eq!(graph.count_matching(None, None, None), model.len());
        prop_assert_eq!(graph.iter().len(), model.len());
    }

    /// N-Triples serialization round-trips arbitrary graphs bytewise.
    #[test]
    fn ntriples_round_trip(triples in proptest::collection::vec(arb_triple(), 0..40)) {
        let mut graph = Graph::new();
        for (s, p, o) in triples {
            graph.insert(s, p, o);
        }
        let text = to_ntriples(&graph);
        let mut reloaded = Graph::new();
        let inserted = parse_ntriples(&text, &mut reloaded).expect("reparse");
        prop_assert_eq!(inserted, graph.len());
        prop_assert_eq!(to_ntriples(&reloaded), text);
    }

    /// Exact text search finds precisely the literals whose normalized
    /// form matches.
    #[test]
    fn text_index_exact_matches_normalization(
        literals in proptest::collection::vec("[a-zA-Z0-9 ]{1,12}", 1..20),
        probe in 0usize..20,
    ) {
        let mut graph = Graph::new();
        let subject = graph.intern_iri("http://ex/s");
        let pred = graph.intern_iri("http://ex/label");
        for lit in &literals {
            let id = graph.intern_literal(Literal::simple(lit.clone()));
            graph.insert_ids(subject, pred, id);
        }
        let needle = &literals[probe % literals.len()];
        let hits = graph.literals_matching_exact(needle);
        // expected: the number of *distinct literal terms* whose
        // normalized lexical form equals the needle's (identical strings
        // intern to one term; differently-spaced variants stay distinct)
        let mut expected: Vec<&String> = literals
            .iter()
            .filter(|l| re2x_rdf::text::normalize(l) == re2x_rdf::text::normalize(needle))
            .collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(hits.len(), expected.len());
    }

    /// Numeric literal caching agrees with on-demand parsing.
    #[test]
    fn numeric_cache_is_correct(n in any::<i64>()) {
        let mut graph = Graph::new();
        let id = graph.intern_literal(Literal::integer(n));
        prop_assert_eq!(graph.numeric_value(id), Some(n as f64));
    }
}
