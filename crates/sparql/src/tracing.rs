//! A query-provenance endpoint decorator.
//!
//! [`TracingEndpoint`] wraps any [`SparqlEndpoint`] and attributes every
//! query passing through it to the pipeline phase that issued it — the
//! innermost span open on the calling thread of the wrapped
//! [`Tracer`] — along with its latency. The result is the per-phase
//! query-count and latency-quantile table ([`Tracer::provenance`]) that the
//! paper's cost-attribution figures (bootstrap vs. synthesis vs.
//! refinement, "endpoint performance dominates") are built from.
//!
//! With a disabled tracer the decorator is transparent: it delegates
//! without timing, locking, or allocating. Place it directly over the
//! endpoint whose `stats()` you want provenance to reconcile with —
//! outermost in the stack, so that per-phase counts sum exactly to the
//! queries the stack answered (over a [`crate::CachingEndpoint`] that is
//! hits + misses; over a bare [`crate::LocalEndpoint`],
//! `EndpointStats::total_queries`).

// lint:allow-file(no-wallclock, measures per-query endpoint latency for span attribution)

use crate::ast::Query;
use crate::endpoint::{EndpointStats, SparqlEndpoint};
use crate::error::SparqlError;
use crate::value::Solutions;
use re2x_obs::{QueryKind, Tracer};
use re2x_rdf::{Graph, TermId};
use std::time::Instant;

/// A [`SparqlEndpoint`] decorator that attributes every query to the
/// current tracer span (query provenance).
pub struct TracingEndpoint<E> {
    inner: E,
    tracer: Tracer,
}

impl<E: SparqlEndpoint> TracingEndpoint<E> {
    /// Wraps `inner`, attributing its queries through `tracer`.
    pub fn new(inner: E, tracer: Tracer) -> TracingEndpoint<E> {
        TracingEndpoint { inner, tracer }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// The tracer queries are attributed through.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for TracingEndpoint<E> {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        if !self.tracer.is_enabled() {
            return self.inner.select(query);
        }
        let start = Instant::now();
        let result = self.inner.select(query);
        self.tracer.record_query(QueryKind::Select, start.elapsed());
        result
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        if !self.tracer.is_enabled() {
            return self.inner.ask(query);
        }
        let start = Instant::now();
        let result = self.inner.ask(query);
        self.tracer.record_query(QueryKind::Ask, start.elapsed());
        result
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        if !self.tracer.is_enabled() {
            return self.inner.keyword_search(keyword, exact);
        }
        let start = Instant::now();
        let hits = self.inner.keyword_search(keyword, exact);
        self.tracer
            .record_query(QueryKind::Keyword, start.elapsed());
        hits
    }

    fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    fn stats(&self) -> EndpointStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.is_enabled().then_some(&self.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::LocalEndpoint;
    use re2x_obs::UNATTRIBUTED;
    use re2x_rdf::io::parse_turtle;

    fn local() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany .
            ex:Germany ex:label "Germany" .
            "#,
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    #[test]
    fn queries_are_attributed_to_the_open_span() {
        let tracer = Tracer::enabled();
        let ep = TracingEndpoint::new(local(), tracer.clone());
        {
            let _phase = tracer.span("bootstrap");
            let _ = ep
                .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                .expect("query");
            let _ = ep
                .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
                .expect("ask");
        }
        let _ = ep.keyword_search("germany", true);
        let prov = tracer.provenance();
        let by_path: std::collections::BTreeMap<&str, _> =
            prov.iter().map(|(k, v)| (k.as_str(), v)).collect();
        assert_eq!(by_path["bootstrap"].selects, 1);
        assert_eq!(by_path["bootstrap"].asks, 1);
        assert_eq!(by_path[UNATTRIBUTED].keyword_searches, 1);
    }

    #[test]
    fn provenance_counts_reconcile_with_endpoint_stats() {
        let tracer = Tracer::enabled();
        let ep = TracingEndpoint::new(local(), tracer.clone());
        {
            let _a = tracer.span("a");
            for _ in 0..3 {
                let _ = ep
                    .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                    .expect("query");
            }
        }
        {
            let _b = tracer.span("b");
            let _ = ep.keyword_search("germany", false);
        }
        let attributed: u64 = tracer.provenance().iter().map(|(_, s)| s.queries()).sum();
        assert_eq!(attributed, ep.stats().total_queries());
    }

    #[test]
    fn disabled_tracer_decorates_transparently() {
        let ep = TracingEndpoint::new(local(), Tracer::disabled());
        let _ = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert_eq!(ep.stats().selects, 1);
        assert!(ep.tracer().provenance().is_empty());
    }

    #[test]
    fn stats_and_graph_pass_through() {
        let tracer = Tracer::enabled();
        let ep = TracingEndpoint::new(local(), tracer);
        assert_eq!(ep.stats(), EndpointStats::default());
        assert!(!ep.graph().is_empty());
        ep.reset_stats();
        assert_eq!(ep.into_inner().stats(), EndpointStats::default());
    }
}
