//! The `serve` experiment: multi-tenant session throughput and latency
//! under a deterministic closed-loop workload (`bench_results/serve.json`).
//!
//! A seeded driver builds a pool of example tuples anchored at real
//! observations, draws them **Zipf-distributed** (a few hot examples, a
//! long cold tail — the shape real keyword workloads have), and scripts
//! each session as a bootstrap + ReOLAP synthesis round followed by a mix
//! of ExRef refinements, previews, think times, and backtracking. The same
//! scripts then run against a [`re2x_serve::Server`] at several worker
//! counts; every configuration's transcripts are differentially checked
//! against a serial replay through a bare session, and the report carries
//! exact p50/p99 end-to-end session latency and throughput per worker
//! count. At driver load (queue capacity ≥ session count) **zero**
//! sessions may be rejected — `scripts/verify.sh` gates on that.

use crate::report::{fmt_duration, Table};
use re2x_cube::{bootstrap, BootstrapConfig, VirtualSchemaGraph};
use re2x_datagen::common::{example_workload_on, rng, Dataset};
use re2x_datagen::prng::StdRng;
use re2x_obs::{EventStream, DEFAULT_SUBSCRIBER_CAPACITY};
use re2x_rdf::Graph;
use re2x_serve::{run_script, RoundOp, ServerBuilder, SessionScript, TenantSpec};
use re2x_sparql::LocalEndpoint;
use re2x_tui::DashboardState;
use re2xolap::{RefineOp, SessionConfig};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker counts swept by the experiment.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Zipf exponent of the example-tuple popularity distribution.
pub const ZIPF_EXPONENT: f64 = 1.1;

/// The tenants the driver multiplexes over (stack shapes differ: a cached
/// analytics tenant, a bare ad-hoc tenant, a traced audit tenant).
pub const TENANTS: [&str; 3] = ["analytics", "adhoc", "audit"];

/// One swept worker count.
pub struct ServeRow {
    /// Worker threads serving the run-queue.
    pub workers: usize,
    /// Sessions that completed with a transcript.
    pub completed: u64,
    /// Sessions that failed (engine or endpoint error).
    pub failed: u64,
    /// Sessions refused admission.
    pub rejected: u64,
    /// Median end-to-end session latency (submit → transcript).
    pub p50: Duration,
    /// 99th-percentile end-to-end session latency.
    pub p99: Duration,
    /// Completed sessions per second of driver wall time.
    pub throughput: f64,
    /// Every transcript byte-identical to the serial replay oracle.
    pub identical: bool,
}

/// Report of the serve sweep.
pub struct ServeReport {
    /// Observation count of the generated dataset.
    pub observations: usize,
    /// Sessions submitted per worker count.
    pub sessions: usize,
    /// Distinct example tuples in the Zipf pool.
    pub pool: usize,
    /// One row per swept worker count.
    pub rows: Vec<ServeRow>,
}

impl ServeReport {
    /// All configurations matched the serial replay oracle.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Total sessions rejected across the sweep (must be zero at driver
    /// load: the queue is sized to the session count).
    pub fn total_rejected(&self) -> u64 {
        self.rows.iter().map(|r| r.rejected).sum()
    }

    /// Machine-readable report (`bench_results/serve.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"observations\": {},", self.observations);
        let _ = writeln!(out, "  \"sessions\": {},", self.sessions);
        let _ = writeln!(out, "  \"tenants\": {},", TENANTS.len());
        let _ = writeln!(out, "  \"example_pool\": {},", self.pool);
        let _ = writeln!(out, "  \"zipf_exponent\": {ZIPF_EXPONENT},");
        let _ = writeln!(out, "  \"all_identical\": {},", self.all_identical());
        let _ = writeln!(out, "  \"total_rejected\": {},", self.total_rejected());
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"workers\": {}, \"completed\": {}, \"failed\": {}, \
                 \"rejected\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"throughput_sps\": {:.2}, \"identical\": {}}}{comma}",
                row.workers,
                row.completed,
                row.failed,
                row.rejected,
                row.p50.as_micros(),
                row.p99.as_micros(),
                row.throughput,
                row.identical,
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable summary table.
    pub fn summary(&self) -> String {
        let mut table = Table::new([
            "workers",
            "completed",
            "rejected",
            "p50",
            "p99",
            "throughput",
            "identical",
        ]);
        for row in &self.rows {
            table.row([
                row.workers.to_string(),
                row.completed.to_string(),
                row.rejected.to_string(),
                fmt_duration(row.p50),
                fmt_duration(row.p99),
                format!("{:.1}/s", row.throughput),
                row.identical.to_string(),
            ]);
        }
        let mut out = table.render();
        let _ = writeln!(
            out,
            "\n{} sessions over {} tenants, {} Zipf(s={ZIPF_EXPONENT}) example tuples, \
             {} observations; transcripts differentially checked against serial replay",
            self.sessions,
            TENANTS.len(),
            self.pool,
            self.observations,
        );
        out
    }
}

/// Cumulative-weight table for Zipf(s) over ranks `1..=n`.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws a rank index in `0..n` (0 = most popular).
    fn draw(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty pool");
        let u = rng.gen_range(0.0f64..total);
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// Generates the deterministic session mix for one sweep: every session
/// opens with a Zipf-drawn synthesis round, then walks 1–4 ExRef rounds
/// interleaved with previews, think times, and backtracking.
fn gen_scripts(pool: &[Vec<String>], sessions: usize, seed: u64) -> Vec<SessionScript> {
    let ops = [
        RefineOp::Disaggregate,
        RefineOp::TopK,
        RefineOp::Percentile,
        RefineOp::Similarity,
    ];
    let zipf = Zipf::new(pool.len(), ZIPF_EXPONENT);
    let mut rng = rng(seed ^ 0x5E2F);
    (0..sessions)
        .map(|i| {
            let mut rounds = vec![RoundOp::Synthesize {
                example: pool[zipf.draw(&mut rng)].clone(),
                pick: rng.gen_range(0usize..3),
            }];
            for _ in 0..rng.gen_range(1usize..5) {
                rounds.push(match rng.gen_range(0usize..8) {
                    0..=3 => RoundOp::Refine {
                        op: ops[rng.gen_range(0usize..4)],
                        pick: rng.gen_range(0usize..4),
                    },
                    4 | 5 => RoundOp::Think {
                        millis: rng.gen_range(1u64..4),
                    },
                    6 => RoundOp::Preview {
                        op: ops[rng.gen_range(0usize..4)],
                    },
                    _ => RoundOp::Backtrack,
                });
            }
            SessionScript {
                tenant: TENANTS[i % TENANTS.len()].to_owned(),
                rounds,
            }
        })
        .collect()
}

/// Exact quantile of a sorted latency vector.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A live dashboard attached to one sweep configuration: a bounded bus
/// subscription folded into a [`DashboardState`] and repainted as ANSI
/// frames every ~100ms until stopped. The subscription never blocks the
/// workers — if the painter falls behind, oldest events drop and the
/// frame's `dropped` counter says so.
struct Dashboard {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Dashboard {
    fn spawn(stream: EventStream) -> Dashboard {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut state = DashboardState::new();
            let mut stdout = std::io::stdout();
            print!("\u{1b}[2J");
            loop {
                let done = flag.load(Ordering::Acquire);
                for event in stream.poll() {
                    state.apply(&event);
                }
                state.note_dropped(stream.dropped_events());
                print!("{}", re2x_tui::render(&state).to_ansi());
                let _ = stdout.flush();
                if done {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            println!();
        });
        Dashboard { stop, handle }
    }

    fn finish(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.handle.join();
    }
}

/// Runs the sweep on a eurostat-shaped dataset of `observations` facts
/// with `sessions` closed-loop clients per worker count.
pub fn run_with(observations: usize, sessions: usize, seed: u64) -> ServeReport {
    run_with_dash(observations, sessions, seed, false)
}

/// [`run_with`], optionally painting a live TUI dashboard (`repro serve
/// --dash`) fed from each sweep configuration's server bus.
pub fn run_with_dash(observations: usize, sessions: usize, seed: u64, dash: bool) -> ServeReport {
    let mut dataset: Dataset = re2x_datagen::eurostat::generate(observations, seed);
    let graph = std::mem::take(&mut dataset.graph);
    let boot = LocalEndpoint::new(graph);
    let schema: VirtualSchemaGraph =
        bootstrap(&boot, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap succeeds on generated data")
            .schema;
    let graph: Graph = boot.into_graph();

    let pool = example_workload_on(&graph, &dataset, 2, 16, seed ^ 0x21F);
    let scripts = gen_scripts(&pool, sessions, seed);

    // serial replay oracle: the byte-identity reference for every sweep
    let oracle = LocalEndpoint::new(graph.clone());
    let reference: Vec<String> = scripts
        .iter()
        .map(|s| {
            run_script(&oracle, &schema, s, &SessionConfig::default())
                .expect("serial replay succeeds")
                .to_text()
        })
        .collect();

    let mut rows = Vec::new();
    for &workers in &WORKER_COUNTS {
        let server = ServerBuilder::new()
            .workers(workers)
            .queue_capacity(sessions.max(1))
            .tenant(TenantSpec::new("analytics").cached(64))
            .tenant(TenantSpec::new("adhoc"))
            .tenant(TenantSpec::new("audit").traced())
            .start(&graph, &schema);
        let dashboard =
            dash.then(|| Dashboard::spawn(server.subscribe(DEFAULT_SUBSCRIBER_CAPACITY)));

        let started = Instant::now();
        // closed loop: one client thread per session, submit → wait
        let outcomes: Vec<(Duration, Result<String, re2x_serve::ServeError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = scripts
                    .iter()
                    .map(|script| {
                        let server = &server;
                        scope.spawn(move || {
                            let begin = Instant::now();
                            let result = server.run(script.clone());
                            (begin.elapsed(), result.map(|t| t.to_text()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect()
            });
        let wall = started.elapsed();
        server.shutdown();
        if let Some(dashboard) = dashboard {
            dashboard.finish();
        }

        let completed = outcomes.iter().filter(|(_, t)| t.is_ok()).count() as u64;
        let rejected = outcomes
            .iter()
            .filter(|(_, t)| {
                matches!(
                    t,
                    Err(re2x_serve::ServeError::QueueFull { .. })
                        | Err(re2x_serve::ServeError::ShuttingDown)
                        | Err(re2x_serve::ServeError::UnknownTenant(_))
                )
            })
            .count() as u64;
        let failed = outcomes.len() as u64 - completed - rejected;
        let identical = outcomes
            .iter()
            .zip(&reference)
            .all(|((_, got), want)| got.as_deref().ok() == Some(want.as_str()));
        let mut latencies: Vec<Duration> = outcomes.iter().map(|(l, _)| *l).collect();
        latencies.sort_unstable();
        rows.push(ServeRow {
            workers,
            completed,
            failed,
            rejected,
            p50: quantile(&latencies, 0.50),
            p99: quantile(&latencies, 0.99),
            throughput: if wall.is_zero() {
                0.0
            } else {
                completed as f64 / wall.as_secs_f64()
            },
            identical,
        });
    }

    ServeReport {
        observations,
        sessions,
        pool: pool.len(),
        rows,
    }
}

/// The headline configuration: 24 sessions over a 2 000-observation cube.
pub fn run(observations: usize, seed: u64, dash: bool) -> ServeReport {
    run_with_dash(observations, 24, seed, dash)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_completes_everything_and_matches_the_oracle() {
        let report = run_with(600, 9, 11);
        assert_eq!(report.rows.len(), WORKER_COUNTS.len());
        assert!(report.all_identical(), "transcripts diverged from replay");
        assert_eq!(report.total_rejected(), 0, "driver load must not reject");
        for row in &report.rows {
            assert_eq!(row.completed, 9);
            assert_eq!(row.failed, 0);
            assert!(row.p50 <= row.p99);
            assert!(row.throughput > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"workers\": 8"));
    }

    #[test]
    fn dashboard_folds_the_server_bus_into_tenant_panels() {
        // the exact pipeline `repro serve --dash` runs: subscribe to the
        // server's bus, fold the stream, assemble per-tenant panels
        let mut dataset: Dataset = re2x_datagen::eurostat::generate(300, 7);
        let graph = std::mem::take(&mut dataset.graph);
        let boot = LocalEndpoint::new(graph);
        let schema: VirtualSchemaGraph =
            bootstrap(&boot, &BootstrapConfig::new(&dataset.observation_class))
                .expect("bootstrap succeeds on generated data")
                .schema;
        let graph: Graph = boot.into_graph();
        let pool = example_workload_on(&graph, &dataset, 2, 4, 9);
        let scripts = gen_scripts(&pool, 3, 5);

        let server = ServerBuilder::new()
            .workers(2)
            .queue_capacity(4)
            .tenant(TenantSpec::new("analytics").cached(8))
            .tenant(TenantSpec::new("adhoc"))
            .tenant(TenantSpec::new("audit").traced())
            .start(&graph, &schema);
        let stream = server.subscribe(DEFAULT_SUBSCRIBER_CAPACITY);
        for script in &scripts {
            server.run(script.clone()).expect("session completes");
        }
        server.shutdown();

        let mut state = DashboardState::new();
        state.apply_all(&stream.poll());
        state.note_dropped(stream.dropped_events());
        assert_eq!(state.dropped, 0, "bounded run must not overflow the ring");
        let tenants = state.tenants();
        assert_eq!(tenants.len(), 3, "one panel per scripted tenant");
        assert_eq!(tenants.iter().map(|t| t.admitted).sum::<u64>(), 3);
        assert!(tenants.iter().map(|t| t.rounds).sum::<u64>() >= 3);
        for t in &tenants {
            assert!(t.queue_wait.count() > 0, "{} saw no queue wait", t.tenant);
        }
    }

    #[test]
    fn zipf_draws_skew_toward_the_head() {
        let zipf = Zipf::new(16, ZIPF_EXPONENT);
        let mut rng = rng(3);
        let mut counts = [0usize; 16];
        for _ in 0..2000 {
            counts[zipf.draw(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8], "rank 0 must dominate the tail");
        assert!(counts.iter().sum::<usize>() == 2000);
    }
}
