//! A minimal in-repo micro-benchmark harness.
//!
//! The workspace builds offline with zero registry dependencies, so the
//! `benches/` targets cannot use Criterion. This module provides the small
//! slice of it they need: warmup, repeated timed samples, min/mean/max
//! reporting, and per-iteration setup that stays outside the measurement.
//! Benches are declared with `harness = false` and gated behind the
//! default-off `bench-criterion` feature so `cargo build`/`cargo test`
//! never build them; run them with
//! `cargo bench --features bench-criterion`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 10;

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl std::fmt::Display for MicroResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12?} (min {:?}, max {:?}, n={})",
            self.name, self.mean, self.min, self.max, self.samples
        )
    }
}

/// A named group of benchmarks, printed as it runs.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Creates a group; sample count is [`DEFAULT_SAMPLES`] unless the
    /// `RE2X_BENCH_SAMPLES` environment variable overrides it.
    pub fn new(name: impl Into<String>) -> Group {
        let samples = std::env::var("RE2X_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SAMPLES)
            .max(1);
        Group {
            name: name.into(),
            samples,
        }
    }

    /// Times `routine` (one warmup, then the sample budget) and prints the
    /// summary line.
    pub fn bench<T>(&self, case: &str, mut routine: impl FnMut() -> T) -> MicroResult {
        self.bench_with_setup(case, || (), |()| routine())
    }

    /// [`Group::bench`] with per-sample setup excluded from the timing.
    pub fn bench_with_setup<S, T>(
        &self,
        case: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> MicroResult {
        // warmup: pay lazy initialization and cache-fill outside the samples
        black_box(routine(setup()));
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            durations.push(start.elapsed());
        }
        let min = durations.iter().copied().min().unwrap_or_default();
        let max = durations.iter().copied().max().unwrap_or_default();
        let mean = durations.iter().sum::<Duration>() / durations.len().max(1) as u32;
        let result = MicroResult {
            name: format!("{}/{case}", self.name),
            samples: durations.len(),
            min,
            mean,
            max,
        };
        println!("{result}");
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_timings() {
        let group = Group::new("t");
        let r = group.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(r.name, "t/spin");
        assert!(r.samples >= 1);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.max > Duration::ZERO);
    }

    #[test]
    fn setup_is_excluded_from_measurement() {
        let group = Group::new("t");
        let r = group.bench_with_setup(
            "sleepy_setup",
            || std::thread::sleep(Duration::from_millis(2)),
            |()| 1 + 1,
        );
        assert!(
            r.mean < Duration::from_millis(2),
            "setup leaked into timing: {:?}",
            r.mean
        );
    }
}
