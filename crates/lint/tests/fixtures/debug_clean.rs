//! no-debug-output CLEAN fixture: rendering goes through `write!` into a
//! caller-supplied buffer, never straight to the terminal.

use std::fmt::Write;

pub fn render(x: u32) -> String {
    let mut out = String::new();
    // "println!" inside a string is not a macro call
    let _ = write!(out, "x = {x} (not a println! call)");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("visible only under --nocapture");
    }
}
