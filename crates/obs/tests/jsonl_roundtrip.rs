//! Property: the JSONL exporters and the parser are exact inverses —
//! `events_to_jsonl → parse → events_to_jsonl` is byte-identical on
//! seeded random event streams (and likewise for bus-event logs). This is
//! what makes `repro watch` replay trustworthy: a recorded log re-renders
//! to exactly the frames the live run would have shown.

use re2x_obs::{
    bus_events_to_jsonl, events_to_jsonl, parse_bus_events, parse_trace_events, BusEvent,
    QueryKind, TraceEvent,
};
use re2x_testkit::{check, TestRng};
use std::time::Duration;

/// Paths/names that exercise every escape class the exporter emits,
/// including quotes, backslashes, newlines, tabs, and control chars.
fn gen_string(rng: &mut TestRng) -> String {
    const NASTY: [&str; 8] = ["\"", "\\", "\n", "\t", "\r", "\u{1}", "µ", "/"];
    let mut s = rng.string_from("abcdefgh0123456789._-", 1..8);
    for _ in 0..rng.gen_range(0..3usize) {
        s.push_str(NASTY[rng.gen_range(0..NASTY.len())]);
        s.push_str(&rng.string_from("xyz", 0..3));
    }
    s
}

fn gen_trace_event(rng: &mut TestRng) -> TraceEvent {
    let at = Duration::from_micros(rng.gen_range(0..5_000_000u64));
    let thread = rng.gen_range(0..16u64);
    match rng.gen_range(0..4u32) {
        0 => TraceEvent::Enter {
            span: rng.gen_range(1..10_000u64),
            parent: if rng.gen_bool(0.5) {
                Some(rng.gen_range(1..10_000u64))
            } else {
                None
            },
            path: gen_string(rng),
            name: gen_string(rng),
            thread,
            at,
            fields: (0..rng.gen_range(0..3usize))
                .map(|_| (gen_string(rng), gen_string(rng)))
                .collect(),
        },
        1 => TraceEvent::Exit {
            span: rng.gen_range(1..10_000u64),
            path: gen_string(rng),
            thread,
            at,
            wall: Duration::from_micros(rng.gen_range(0..1_000_000u64)),
            self_time: Duration::from_micros(rng.gen_range(0..1_000_000u64)),
        },
        2 => TraceEvent::Query {
            path: gen_string(rng),
            kind: *rng.pick(&[QueryKind::Select, QueryKind::Ask, QueryKind::Keyword]),
            thread,
            at,
            latency: Duration::from_micros(rng.gen_range(0..500_000u64)),
        },
        _ => TraceEvent::Cache {
            path: gen_string(rng),
            hit: rng.gen_bool(0.5),
            thread,
            at,
        },
    }
}

fn gen_bus_event(rng: &mut TestRng) -> BusEvent {
    let at = Duration::from_micros(rng.gen_range(0..5_000_000u64));
    match rng.gen_range(0..4u32) {
        0 => BusEvent::Trace(gen_trace_event(rng)),
        1 => BusEvent::Counter {
            name: gen_string(rng),
            delta: rng.gen_range(0..1_000u64),
            at,
        },
        // f64 gauge values built from small integer halves round-trip
        // exactly through Rust's shortest-repr Display
        2 => BusEvent::Gauge {
            name: gen_string(rng),
            value: rng.gen_range(-200i64..200i64) as f64 / 2.0,
            at,
        },
        _ => BusEvent::Observe {
            name: gen_string(rng),
            latency: Duration::from_micros(rng.gen_range(0..500_000u64)),
            at,
        },
    }
}

#[test]
fn trace_jsonl_roundtrips_byte_identically() {
    check("trace_jsonl_roundtrip", |rng| {
        let events: Vec<TraceEvent> = (0..rng.gen_range(0..40usize))
            .map(|_| gen_trace_event(rng))
            .collect();
        let jsonl = events_to_jsonl(&events);
        let parsed = parse_trace_events(&jsonl).expect("exporter output parses");
        assert_eq!(parsed, events, "micros-granularity events parse exactly");
        assert_eq!(
            events_to_jsonl(&parsed),
            jsonl,
            "serialize → parse → serialize is the identity on bytes"
        );
    });
}

#[test]
fn bus_jsonl_roundtrips_byte_identically() {
    check("bus_jsonl_roundtrip", |rng| {
        let events: Vec<BusEvent> = (0..rng.gen_range(0..40usize))
            .map(|_| gen_bus_event(rng))
            .collect();
        let jsonl = bus_events_to_jsonl(&events);
        let parsed = parse_bus_events(&jsonl).expect("exporter output parses");
        assert_eq!(parsed, events);
        assert_eq!(bus_events_to_jsonl(&parsed), jsonl);
    });
}
