// lint:allow-file(no-wallclock, session and queue latency measurement feeds the serve metrics surface)
//! The multi-tenant session server.
//!
//! A [`Server`] hosts many concurrent scripted explorations over **one**
//! shared graph snapshot. Tenants are registered up front; each gets its
//! own endpoint decorator stack built over a copy-on-write clone of the
//! snapshot (the interner and text index stay shared — a tenant costs a
//! few `Arc` bumps, not a graph copy). Admission control is a bounded
//! run-queue: [`Server::submit`] never blocks — it yields a [`Ticket`] or
//! a typed [`ServeError::QueueFull`] / [`ServeError::ShuttingDown`].
//! Worker threads drain the queue, driving each session through the same
//! [`crate::run_script`] path the serial replay oracle uses, inside
//! `catch_unwind` so a panicking session round becomes
//! [`ServeError::WorkerPanicked`] instead of taking the worker down.
//! [`Server::shutdown`] drains: every admitted session completes, then the
//! workers exit and join.
//!
//! Every transition lands in the shared [`Metrics`] registry under
//! per-tenant labels (admitted, rejected-by-reason, active, completed,
//! failed, budget-exhausted, worker-panics, round and session latency
//! histograms), so the Prometheus exposition shows the multi-tenant
//! picture without any new plumbing.

use crate::budget::QueryBudget;
use crate::error::ServeError;
use crate::script::{run_script, SessionScript, SessionTranscript};
use re2x_cube::VirtualSchemaGraph;
use re2x_obs::{label, lock_or_recover, wait_or_recover, Metrics};
use re2x_rdf::Graph;
use re2x_sparql::{CachingEndpoint, LocalEndpoint, SparqlEndpoint, TracingEndpoint};
use re2xolap::{ExplorationMetrics, SessionConfig, SessionObserver, SessionPhase, StepCost};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Handle for one admitted session; redeem it with [`Server::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Declarative description of one tenant's endpoint decorator stack.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    id: String,
    cache_capacity: usize,
    traced: bool,
}

impl TenantSpec {
    /// A bare stack: a private endpoint over the shared snapshot.
    pub fn new(id: &str) -> TenantSpec {
        TenantSpec {
            id: id.to_owned(),
            cache_capacity: 0,
            traced: false,
        }
    }

    /// Adds an LRU query cache of `capacity` entries to the stack.
    pub fn cached(mut self, capacity: usize) -> TenantSpec {
        self.cache_capacity = capacity;
        self
    }

    /// Adds a tracing layer (span-attributed query provenance).
    pub fn traced(mut self) -> TenantSpec {
        self.traced = true;
        self
    }

    /// The tenant's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Materializes the stack over a copy-on-write clone of `graph`.
    fn build(&self, graph: &Graph, config: &SessionConfig) -> Box<dyn SparqlEndpoint> {
        let base = LocalEndpoint::new(graph.clone());
        let mut stack: Box<dyn SparqlEndpoint> = Box::new(base);
        if self.cache_capacity > 0 {
            stack = Box::new(CachingEndpoint::with_capacity(stack, self.cache_capacity));
        }
        if self.traced {
            stack = Box::new(TracingEndpoint::new(stack, config.tracer.clone()));
        }
        stack
    }
}

/// Configures and launches a [`Server`].
pub struct ServerBuilder {
    workers: usize,
    queue_capacity: usize,
    session_budget: Option<u64>,
    session_config: SessionConfig,
    tenants: Vec<TenantSpec>,
    custom: Vec<(String, Box<dyn SparqlEndpoint>)>,
    metrics: Arc<Metrics>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            workers: 2,
            queue_capacity: 64,
            session_budget: None,
            session_config: SessionConfig::default(),
            tenants: Vec::new(),
            custom: Vec::new(),
            metrics: Arc::new(Metrics::new()),
        }
    }
}

impl ServerBuilder {
    /// A builder with defaults: 2 workers, a 64-deep run-queue, no budget.
    pub fn new() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Number of worker threads (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> ServerBuilder {
        self.workers = workers.max(1);
        self
    }

    /// Bound of the admission run-queue (clamped to at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> ServerBuilder {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Per-session `SELECT`/`ASK` budget; `None` leaves sessions unbounded.
    pub fn session_budget(mut self, budget: Option<u64>) -> ServerBuilder {
        self.session_budget = budget;
        self
    }

    /// Session configuration template cloned into every hosted session.
    pub fn session_config(mut self, config: SessionConfig) -> ServerBuilder {
        self.session_config = config;
        self
    }

    /// Registers a tenant with a declaratively composed stack.
    pub fn tenant(mut self, spec: TenantSpec) -> ServerBuilder {
        self.tenants.push(spec);
        self
    }

    /// Registers a tenant with a caller-built endpoint stack — the hook
    /// the fault-injection suite uses to slot a
    /// [`crate::FlakyEndpoint`] under one tenant.
    pub fn tenant_stack(mut self, id: &str, stack: Box<dyn SparqlEndpoint>) -> ServerBuilder {
        self.custom.push((id.to_owned(), stack));
        self
    }

    /// Shares a metrics registry (e.g. the one a Prometheus exposition
    /// endpoint snapshots); by default the server creates its own.
    pub fn metrics(mut self, metrics: Arc<Metrics>) -> ServerBuilder {
        self.metrics = metrics;
        self
    }

    /// Builds tenant stacks over `graph`, spawns the workers, and returns
    /// the running server.
    pub fn start(self, graph: &Graph, schema: &VirtualSchemaGraph) -> Server {
        let mut tenants: HashMap<String, Box<dyn SparqlEndpoint>> = HashMap::new();
        for spec in &self.tenants {
            tenants.insert(spec.id.clone(), spec.build(graph, &self.session_config));
        }
        for (id, stack) in self.custom {
            tenants.insert(id, stack);
        }
        let inner = Arc::new(Inner {
            tenants,
            schema: schema.clone(),
            config: self.session_config,
            budget: self.session_budget,
            queue_capacity: self.queue_capacity,
            metrics: self.metrics,
            queue: Mutex::new(QueueState::default()),
            jobs_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            results_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("re2x-serve-{i}"))
                .spawn(move || worker_loop(&worker_inner));
            if let Ok(handle) = spawned {
                handles.push(handle);
            }
        }
        Server {
            inner,
            workers: Mutex::new(handles),
        }
    }
}

/// One admitted but not yet serviced session.
struct Job {
    ticket: u64,
    script: SessionScript,
    admitted_at: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    next_ticket: u64,
    in_flight: usize,
    shutting_down: bool,
}

struct Inner {
    tenants: HashMap<String, Box<dyn SparqlEndpoint>>,
    schema: VirtualSchemaGraph,
    config: SessionConfig,
    budget: Option<u64>,
    queue_capacity: usize,
    metrics: Arc<Metrics>,
    // lock-order: serve.server.queue
    queue: Mutex<QueueState>,
    jobs_cv: Condvar,
    idle_cv: Condvar,
    // lock-order: serve.server.results
    results: Mutex<HashMap<u64, Result<SessionTranscript, ServeError>>>,
    results_cv: Condvar,
}

/// The running multi-tenant session server.
pub struct Server {
    inner: Arc<Inner>,
    // lock-order: serve.server.workers
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Submits a session script for asynchronous execution. Never blocks:
    /// admission either succeeds with a [`Ticket`] or fails with a typed
    /// reason ([`ServeError::UnknownTenant`], [`ServeError::QueueFull`],
    /// [`ServeError::ShuttingDown`]) — nothing is enqueued on failure.
    pub fn submit(&self, script: SessionScript) -> Result<Ticket, ServeError> {
        let tenant = script.tenant.clone();
        if !self.inner.tenants.contains_key(&tenant) {
            self.reject(&tenant, "unknown_tenant");
            return Err(ServeError::UnknownTenant(tenant));
        }
        let admitted = {
            let mut guard = lock_or_recover("serve.server.queue", &self.inner.queue);
            if guard.shutting_down {
                Err(ServeError::ShuttingDown)
            } else if guard.jobs.len() >= self.inner.queue_capacity {
                Err(ServeError::QueueFull {
                    capacity: self.inner.queue_capacity,
                })
            } else {
                let ticket = guard.next_ticket;
                guard.next_ticket += 1;
                guard.jobs.push_back(Job {
                    ticket,
                    script,
                    admitted_at: Instant::now(),
                });
                Ok(Ticket(ticket))
            }
        };
        match &admitted {
            Ok(_) => {
                self.inner
                    .metrics
                    .counter_add(&label("serve.sessions_admitted", &[("tenant", &tenant)]), 1);
                self.inner.jobs_cv.notify_one();
            }
            Err(ServeError::ShuttingDown) => self.reject(&tenant, "shutting_down"),
            Err(_) => self.reject(&tenant, "queue_full"),
        }
        admitted
    }

    fn reject(&self, tenant: &str, reason: &str) {
        self.inner.metrics.counter_add(
            &label(
                "serve.sessions_rejected",
                &[("tenant", tenant), ("reason", reason)],
            ),
            1,
        );
    }

    /// Blocks until the ticket's session completes and returns its
    /// outcome. Each ticket is redeemable once.
    pub fn wait(&self, ticket: Ticket) -> Result<SessionTranscript, ServeError> {
        let mut guard = lock_or_recover("serve.server.results", &self.inner.results);
        loop {
            if let Some(result) = guard.remove(&ticket.0) {
                return result;
            }
            guard = wait_or_recover(&self.inner.results_cv, guard);
        }
    }

    /// Convenience: submit and wait.
    pub fn run(&self, script: SessionScript) -> Result<SessionTranscript, ServeError> {
        let ticket = self.submit(script)?;
        self.wait(ticket)
    }

    /// The metrics registry every transition is recorded in.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Subscribes a live consumer (e.g. the `re2x-tui` dashboard) to the
    /// server's metric event bus with a bounded ring of `capacity` events.
    /// Slow consumers lose oldest-first and never block a worker.
    pub fn subscribe(&self, capacity: usize) -> re2x_obs::EventStream {
        self.inner.metrics.subscribe(capacity)
    }

    /// Registered tenant identifiers, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.inner.tenants.keys().cloned().collect();
        ids.sort_unstable();
        ids
    }

    /// Graceful shutdown: stops admitting, drains every already-admitted
    /// session (queued and in-flight), then joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut guard = lock_or_recover("serve.server.queue", &self.inner.queue);
            guard.shutting_down = true;
        }
        self.inner.jobs_cv.notify_all();
        {
            let mut guard = lock_or_recover("serve.server.queue", &self.inner.queue);
            while !guard.jobs.is_empty() || guard.in_flight > 0 {
                guard = wait_or_recover(&self.inner.idle_cv, guard);
            }
        }
        self.inner.jobs_cv.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = lock_or_recover("serve.server.workers", &self.workers);
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bridges session lifecycle callbacks into per-tenant metrics.
struct RoundObserver {
    metrics: Arc<Metrics>,
    tenant: String,
}

impl SessionObserver for RoundObserver {
    fn on_phase(&self, phase: SessionPhase, cost: StepCost) {
        let tenant = self.tenant.as_str();
        self.metrics.observe(
            &label("serve.round_latency", &[("tenant", tenant)]),
            cost.wall,
        );
        self.metrics.counter_add(
            &label(
                "serve.rounds",
                &[("tenant", tenant), ("phase", phase.as_str())],
            ),
            1,
        );
    }

    fn on_session_end(&self, metrics: &ExplorationMetrics) {
        self.metrics.counter_add(
            &label("serve.interactions", &[("tenant", &self.tenant)]),
            metrics.interactions,
        );
    }
}

/// Services jobs until shutdown drains the queue.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut guard = lock_or_recover("serve.server.queue", &inner.queue);
            loop {
                if let Some(job) = guard.jobs.pop_front() {
                    guard.in_flight += 1;
                    break Some(job);
                }
                if guard.shutting_down {
                    break None;
                }
                guard = wait_or_recover(&inner.jobs_cv, guard);
            }
        };
        let Some(job) = job else {
            return;
        };
        let tenant = job.script.tenant.clone();
        let active = label("serve.sessions_active", &[("tenant", &tenant)]);
        inner.metrics.gauge_add(&active, 1.0);
        inner.metrics.observe(
            &label("serve.queue_wait", &[("tenant", &tenant)]),
            job.admitted_at.elapsed(),
        );
        let started = Instant::now();
        let result = service(inner, &job);
        inner.metrics.observe(
            &label("serve.session_latency", &[("tenant", &tenant)]),
            started.elapsed(),
        );
        inner.metrics.gauge_add(&active, -1.0);
        let outcome_counter = match &result {
            Ok(_) => "serve.sessions_completed",
            Err(e) if e.is_budget_exhausted() => "serve.sessions_budget_exhausted",
            Err(ServeError::WorkerPanicked) => "serve.worker_panics",
            Err(_) => "serve.sessions_failed",
        };
        inner
            .metrics
            .counter_add(&label(outcome_counter, &[("tenant", &tenant)]), 1);
        {
            let mut guard = lock_or_recover("serve.server.results", &inner.results);
            guard.insert(job.ticket, result);
        }
        inner.results_cv.notify_all();
        let idle = {
            let mut guard = lock_or_recover("serve.server.queue", &inner.queue);
            guard.in_flight -= 1;
            guard.jobs.is_empty() && guard.in_flight == 0
        };
        if idle {
            inner.idle_cv.notify_all();
        }
    }
}

/// Runs one job's script under the tenant's stack, the optional session
/// budget, and panic isolation.
fn service(inner: &Arc<Inner>, job: &Job) -> Result<SessionTranscript, ServeError> {
    let Some(stack) = inner.tenants.get(&job.script.tenant) else {
        return Err(ServeError::UnknownTenant(job.script.tenant.clone()));
    };
    let mut config = inner.config.clone();
    config.observer = Some(Arc::new(RoundObserver {
        metrics: Arc::clone(&inner.metrics),
        tenant: job.script.tenant.clone(),
    }));
    let outcome = catch_unwind(AssertUnwindSafe(|| match inner.budget {
        Some(limit) => {
            let budget = QueryBudget::new(stack.as_ref(), limit);
            run_script(&budget, &inner.schema, &job.script, &config)
        }
        None => run_script(stack.as_ref(), &inner.schema, &job.script, &config),
    }));
    match outcome {
        Ok(Ok(transcript)) => Ok(transcript),
        Ok(Err(e)) => Err(ServeError::Session(e)),
        Err(_) => Err(ServeError::WorkerPanicked),
    }
}
