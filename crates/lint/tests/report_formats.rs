//! Output-format regressions: the JSON report must stay valid JSON even
//! when snippets carry quotes/backslashes, and `--write-baseline` must be
//! deterministic and round-trip to a clean run.

use re2x_lint::engine::{apply_baseline, lint_files, report_to_json, to_baseline};
use re2x_lint::SourceFile;
use std::io::Write;
use std::process::{Command, Stdio};

/// A source whose offending lines are full of JSON-hostile characters.
fn hostile_file(path: &str) -> SourceFile {
    let text = "pub fn f(input: Option<u32>) -> u32 {\n\
                \x20   input.expect(\"C:\\\\data\\\\ \\\"quoted\\\" name\")\n\
                }\n";
    SourceFile::new(path.to_owned(), "fx".to_owned(), text.to_owned())
}

#[test]
fn json_report_survives_quotes_and_backslashes() {
    let result = lint_files(&[hostile_file("crates/fx/src/hostile.rs")]);
    assert!(
        !result.findings.is_empty(),
        "the fixture must produce a finding whose snippet needs escaping"
    );
    let outcome = apply_baseline(result.findings.clone(), &[]);
    let json = report_to_json(&outcome, &result);
    assert!(
        json.contains("\\\\") && json.contains("\\\""),
        "escapes present in the payload: {json}"
    );

    // Validate with a real parser when one is around; the string checks
    // above still cover the escaping path when python3 is absent.
    let Ok(mut child) = Command::new("python3")
        .args(["-m", "json.tool"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
    else {
        return;
    };
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(json.as_bytes())
        .expect("feed json.tool");
    let status = child.wait().expect("json.tool exits");
    assert!(status.success(), "python3 -m json.tool rejected: {json}");
}

#[test]
fn baseline_is_deterministic_and_round_trips() {
    // Same files, both lint orders: the written baseline is identical.
    let forward = lint_files(&[
        hostile_file("crates/fx/src/one.rs"),
        hostile_file("crates/fx/src/two.rs"),
    ]);
    let backward = lint_files(&[
        hostile_file("crates/fx/src/two.rs"),
        hostile_file("crates/fx/src/one.rs"),
    ]);
    assert!(!forward.findings.is_empty());
    let text = to_baseline(&forward.findings);
    assert_eq!(
        text,
        to_baseline(&backward.findings),
        "baseline output must not depend on file order"
    );
    let entries: Vec<&str> = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    let mut sorted = entries.clone();
    sorted.sort_unstable();
    assert_eq!(entries, sorted, "entries are written sorted");

    // Round trip: applying the baseline we just wrote yields a clean run
    // with nothing stale.
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let outcome = apply_baseline(forward.findings.clone(), &lines);
    assert!(
        outcome.new_findings.is_empty(),
        "{:?}",
        outcome.new_findings
    );
    assert!(outcome.stale.is_empty(), "{:?}", outcome.stale);
    assert_eq!(outcome.matched, forward.findings.len());
}
