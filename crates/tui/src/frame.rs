//! The render target: a list of styled lines. A `Frame` is plain data —
//! [`Frame::to_plain`] is what golden tests pin byte-for-byte, and
//! [`Frame::to_ansi`] adds the escape sequences for a live terminal.

/// Visual role of one frame line; the ANSI encoder maps roles to SGR
/// sequences, the plain encoder ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Top border / title line.
    Title,
    /// Section divider.
    Section,
    /// Ordinary content.
    Text,
}

/// One rendered dashboard frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Interior width the frame was rendered at (characters).
    pub width: usize,
    lines: Vec<(Style, String)>,
}

impl Frame {
    /// An empty frame of the given width.
    pub fn new(width: usize) -> Frame {
        Frame {
            width,
            lines: Vec::new(),
        }
    }

    /// Appends one styled line.
    pub fn push(&mut self, style: Style, line: String) {
        self.lines.push((style, line));
    }

    /// The lines, in order.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(|(_, l)| l.as_str())
    }

    /// Number of lines.
    pub fn height(&self) -> usize {
        self.lines.len()
    }

    /// Style-free text, one line per `\n`, trailing newline included.
    /// This is the golden-test encoding.
    pub fn to_plain(&self) -> String {
        let mut out = String::new();
        for (_, line) in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// ANSI encoding for a live terminal: cursor home + per-line
    /// clear-to-end (flicker-free repaint without a full screen clear),
    /// titles bold cyan, section dividers bold.
    pub fn to_ansi(&self) -> String {
        let mut out = String::from("\u{1b}[H");
        for (style, line) in &self.lines {
            match style {
                Style::Title => out.push_str("\u{1b}[1;36m"),
                Style::Section => out.push_str("\u{1b}[1m"),
                Style::Text => {}
            }
            out.push_str(line);
            if !matches!(style, Style::Text) {
                out.push_str("\u{1b}[0m");
            }
            out.push_str("\u{1b}[K\r\n");
        }
        out.push_str("\u{1b}[J");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_encoding_is_style_free() {
        let mut frame = Frame::new(10);
        frame.push(Style::Title, "title".to_owned());
        frame.push(Style::Text, "body".to_owned());
        assert_eq!(frame.to_plain(), "title\nbody\n");
        assert_eq!(frame.height(), 2);
    }

    #[test]
    fn ansi_encoding_is_pinned() {
        let mut frame = Frame::new(10);
        frame.push(Style::Title, "t".to_owned());
        frame.push(Style::Text, "b".to_owned());
        assert_eq!(
            frame.to_ansi(),
            "\u{1b}[H\u{1b}[1;36mt\u{1b}[0m\u{1b}[K\r\nb\u{1b}[K\r\n\u{1b}[J"
        );
    }
}
