//! System bootstrap: automatic discovery of the multidimensional schema
//! (Section 5.2, "Construction and use").
//!
//! The crawler is given *only* a SPARQL endpoint and the RDF class
//! identifying observation nodes. It discovers, via standard SPARQL
//! queries:
//!
//! 1. measure predicates — observation edges to numeric literals,
//! 2. dimension predicates — observation edges to IRI nodes,
//! 3. hierarchy levels — by recursively following predicates from dimension
//!    members to further IRI nodes (depth-first with cycle protection: a
//!    predicate may not repeat within one path, and depth is bounded),
//! 4. level attributes — predicates from members to literals,
//! 5. member counts per level.
//!
//! The result is the [`VirtualSchemaGraph`]; everything downstream (query
//! synthesis, refinements) navigates it instead of the triplestore.

use crate::labels::{default_label_predicates, humanize, label_of, local_name};
use crate::patterns::{observation_type, path_to_member};
use crate::vgraph::VirtualSchemaGraph;
use re2x_obs::Tracer;
use re2x_rdf::vocab;
use re2x_sparql::{
    with_async_endpoint, AggFunc, AsyncAdapter, AsyncResponse, AsyncSparqlEndpoint, Expr, Func,
    PatternElement, Query, SelectItem, Solutions, SparqlEndpoint, SparqlError, TermPattern, Ticket,
    TriplePattern,
};
use std::collections::{BTreeMap, HashSet};
use std::task::Poll;
use std::time::{Duration, Instant};

/// Configuration of the bootstrap crawl.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// The RDF class whose instances are observations (e.g.
    /// `qb:Observation`). The only dataset knowledge the system needs.
    pub observation_class: String,
    /// Maximum hierarchy depth to explore below the observation root.
    pub max_depth: usize,
    /// Predicates never treated as dimension or roll-up predicates
    /// (typing and bookkeeping edges).
    pub excluded_predicates: Vec<String>,
    /// Predicates consulted for human-readable labels.
    pub label_predicates: Vec<String>,
    /// Tracer receiving per-phase spans (`bootstrap`, `bootstrap.prelude`,
    /// one `bootstrap.crawl_dimension` per dimension). Disabled by default.
    pub tracer: Tracer,
}

impl BootstrapConfig {
    /// Defaults for a QB-style statistical KG.
    pub fn new(observation_class: impl Into<String>) -> Self {
        BootstrapConfig {
            observation_class: observation_class.into(),
            max_depth: 4,
            excluded_predicates: vec![
                vocab::rdf::TYPE.to_owned(),
                vocab::qb::DATASET_PROP.to_owned(),
                vocab::qb4o::MEMBER_OF.to_owned(),
                vocab::qb4o::IN_HIERARCHY.to_owned(),
            ],
            label_predicates: default_label_predicates(),
            tracer: Tracer::disabled(),
        }
    }

    /// Routes bootstrap spans (and the queries issued inside them) through
    /// `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn is_excluded(&self, predicate: &str) -> bool {
        self.excluded_predicates.iter().any(|p| p == predicate)
    }
}

/// Outcome of a bootstrap run: the schema plus cost accounting (the paper
/// reports bootstrap time in Figure 6c and attributes it to endpoint
/// performance).
#[derive(Debug, Clone)]
pub struct BootstrapReport {
    /// The discovered schema.
    pub schema: VirtualSchemaGraph,
    /// Wall-clock time of the crawl.
    pub elapsed: Duration,
    /// Number of SPARQL queries issued.
    pub endpoint_queries: u64,
}

/// Crawls the endpoint and builds the Virtual Schema Graph, one dimension
/// at a time.
pub fn bootstrap(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
) -> Result<BootstrapReport, SparqlError> {
    // lint:allow(no-wallclock, bootstrap phase timing feeds BootstrapReport durations)
    let start = Instant::now();
    let _root = config.tracer.span("bootstrap");
    let (mut schema, dim_predicates, mut queries) = bootstrap_prelude(endpoint, config)?;

    for predicate in dim_predicates {
        let crawl = {
            let _dim = config.tracer.span_with(
                "bootstrap.crawl_dimension",
                &[("dimension", predicate.as_str())],
            );
            crawl_dimension(endpoint, config, predicate)?
        };
        queries += crawl.queries;
        apply_dimension(&mut schema, crawl);
    }

    Ok(BootstrapReport {
        schema,
        elapsed: start.elapsed(),
        endpoint_queries: queries,
    })
}

/// [`bootstrap`] with the per-dimension hierarchy crawls fanned out over
/// scoped threads, one per dimension.
///
/// Per-dimension crawls are independent — every level path starts with its
/// dimension's predicate, so no discovery in one crawl can affect another —
/// and their results are applied to the schema in dimension order, making
/// the produced [`VirtualSchemaGraph`] *identical* to the serial one (and
/// `endpoint_queries` equal; only `elapsed` differs). Requires an endpoint
/// that tolerates concurrent queries, which [`SparqlEndpoint`]'s `Send +
/// Sync` bound guarantees.
pub fn bootstrap_parallel(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
) -> Result<BootstrapReport, SparqlError> {
    // lint:allow(no-wallclock, bootstrap phase timing feeds BootstrapReport durations)
    let start = Instant::now();
    let root = config.tracer.span("bootstrap");
    let (mut schema, dim_predicates, mut queries) = bootstrap_prelude(endpoint, config)?;

    // Worker threads have no span context of their own; each per-dimension
    // span is explicitly parented under the root via its handle, so paths
    // (and query provenance) nest identically to the serial variant.
    let root_handle = root.handle();
    let crawls: Vec<Result<DimensionCrawl, SparqlError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = dim_predicates
            .into_iter()
            .map(|predicate| {
                let root_handle = root_handle.clone();
                scope.spawn(move || {
                    let _dim = config.tracer.span_under_with(
                        &root_handle,
                        "bootstrap.crawl_dimension",
                        &[("dimension", predicate.as_str())],
                    );
                    crawl_dimension(endpoint, config, predicate)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                // contain a worker panic as a crawl failure instead of
                // re-panicking at scope exit and killing the session
                Err(_) => Err(SparqlError::Endpoint(
                    "dimension crawl thread panicked".into(),
                )),
            })
            .collect()
    });
    for crawl in crawls {
        let crawl = crawl?;
        queries += crawl.queries;
        apply_dimension(&mut schema, crawl);
    }

    Ok(BootstrapReport {
        schema,
        elapsed: start.elapsed(),
        endpoint_queries: queries,
    })
}

/// [`bootstrap`] with the per-level member/attribute crawl fanned out
/// through the poll-based [`AsyncSparqlEndpoint`] adapter: every level's
/// count, attribute, label, and roll-up queries — across *all* dimensions
/// at once — are in flight concurrently on `workers` pool threads, so the
/// crawl pays for round-trip *depth*, not round-trip *count*.
///
/// The produced [`VirtualSchemaGraph`] and `endpoint_queries` are
/// **identical** to the serial [`bootstrap`] (differential-tested): the
/// crawl issues exactly the queries the serial recursion would (including
/// the short-circuiting label-predicate chains), records what each level
/// discovered, and then replays the serial depth-first emission order
/// from the recorded answers. Query provenance reconciles identically
/// too: each submission carries its dimension's span context, which the
/// pool workers adopt while servicing it.
pub fn bootstrap_async(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    workers: usize,
) -> Result<BootstrapReport, SparqlError> {
    // lint:allow(no-wallclock, bootstrap phase timing feeds BootstrapReport durations)
    let start = Instant::now();
    let root = config.tracer.span("bootstrap");
    let (mut schema, dim_predicates, mut queries) = bootstrap_prelude(endpoint, config)?;

    let root_handle = root.handle();
    let graph = endpoint.graph();
    let crawls = with_async_endpoint(endpoint, workers, |pool| {
        crawl_dimensions_async(pool, graph, config, &root_handle, dim_predicates)
    })?;
    for crawl in crawls {
        queries += crawl.queries;
        apply_dimension(&mut schema, crawl);
    }

    Ok(BootstrapReport {
        schema,
        elapsed: start.elapsed(),
        endpoint_queries: queries,
    })
}

/// The serial head of both bootstrap variants: observation count, measure
/// discovery, and the dimension-predicate scan. Returns the partially
/// built schema, the (non-excluded) dimension predicates in discovery
/// order, and the queries spent so far.
fn bootstrap_prelude(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
) -> Result<(VirtualSchemaGraph, Vec<String>, u64), SparqlError> {
    let _span = config.tracer.span("bootstrap.prelude");
    let mut queries = 0u64;
    let mut schema = VirtualSchemaGraph::new(config.observation_class.clone());

    // 1. observation count
    schema.observation_count = count_observations(endpoint, config, &mut queries)?;

    // 2. measures: observation predicates with numeric-literal objects
    for predicate in typed_object_predicates(endpoint, config, Func::IsNumeric, &mut queries)? {
        if config.is_excluded(&predicate) {
            continue;
        }
        let label = label_of(endpoint, &predicate, &config.label_predicates);
        queries += 1; // label lookup
        schema.add_measure(predicate, label);
    }

    // 3. dimensions: observation predicates with IRI objects
    let dim_predicates = typed_object_predicates(endpoint, config, Func::IsIri, &mut queries)?
        .into_iter()
        .filter(|p| !config.is_excluded(p))
        .collect();
    Ok((schema, dim_predicates, queries))
}

/// One discovered hierarchy level, pending insertion into the schema.
struct PendingLevel {
    path: Vec<String>,
    member_count: usize,
    attributes: Vec<String>,
    label: String,
}

/// Everything one dimension's crawl discovered, plus its query count.
struct DimensionCrawl {
    predicate: String,
    label: String,
    levels: Vec<PendingLevel>,
    queries: u64,
}

/// Crawls the hierarchy below one dimension predicate. Self-contained (own
/// query counter, no schema access) so crawls can run on separate threads.
fn crawl_dimension(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    predicate: String,
) -> Result<DimensionCrawl, SparqlError> {
    let mut queries = 0u64;
    let label = label_of(endpoint, &predicate, &config.label_predicates);
    queries += 1;
    let mut levels = Vec::new();
    collect_levels(
        endpoint,
        config,
        &mut levels,
        vec![predicate.clone()],
        &mut queries,
    )?;
    Ok(DimensionCrawl {
        predicate,
        label,
        levels,
        queries,
    })
}

/// Inserts a finished crawl into the schema, preserving depth-first
/// discovery order within the dimension.
fn apply_dimension(schema: &mut VirtualSchemaGraph, crawl: DimensionCrawl) {
    let dim = schema.add_dimension(crawl.predicate, crawl.label);
    for level in crawl.levels {
        schema.add_level(
            dim,
            level.path,
            level.member_count,
            level.attributes,
            level.label,
        );
    }
}

/// Everything one level's fan-out discovered, keyed by path in
/// [`AsyncCrawl::info`]; only levels with members are recorded, mirroring
/// the serial early return on `member_count == 0`.
struct LevelInfo {
    member_count: usize,
    attributes: Vec<String>,
    label: String,
    /// IRI-valued member predicates (empty when the level sits at
    /// `max_depth`, where the serial crawl never asks for roll-ups).
    rollups: Vec<String>,
}

/// One in-flight response: a submitted ticket, then its answer.
enum Slot {
    Pending(Ticket),
    Ready(AsyncResponse),
}

impl Slot {
    /// Polls a pending ticket. `Ok(true)` once the answer is in; a failed
    /// query aborts the crawl like its serial counterpart would.
    fn advance(&mut self, pool: &AsyncAdapter) -> Result<bool, SparqlError> {
        if let Slot::Pending(ticket) = self {
            match pool.poll(ticket) {
                Poll::Ready(result) => *self = Slot::Ready(result?),
                Poll::Pending => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Consumes a completed slot. Taking a still-pending slot (a crawl
    /// bookkeeping bug) or a shape mismatch surfaces as a typed error that
    /// aborts the crawl, like any failed query would.
    fn take_select(self) -> Result<Solutions, SparqlError> {
        match self {
            Slot::Ready(response) => response.into_select(),
            Slot::Pending(_) => Err(SparqlError::Endpoint(
                "bootstrap slot taken before completion".into(),
            )),
        }
    }
}

/// Asynchronous replica of [`label_of`]'s short-circuit chain: one label
/// predicate is probed at a time and a hit (or a failed probe, which
/// serial ignores too) moves the chain along, so the queries issued match
/// the serial lookup exactly. Counted as one query in the per-dimension
/// counter, like the serial `queries += 1` per lookup.
struct LabelChain {
    iri: String,
    next_pred: usize,
    ticket: Option<Ticket>,
    label: Option<String>,
}

/// Shared state of the in-flight crawl across all dimensions.
struct AsyncCrawl<'a> {
    pool: &'a AsyncAdapter,
    tracer: &'a Tracer,
    config: &'a BootstrapConfig,
    graph: &'a re2x_rdf::Graph,
    /// Per-dimension span handles; submissions adopt their dimension's
    /// context so pool workers attribute queries like serial code would.
    handles: Vec<re2x_obs::SpanHandle>,
    /// Per-dimension query counters (serial counter semantics: one per
    /// label *lookup*, not per chain probe).
    queries: Vec<u64>,
    /// Discovered levels per dimension, keyed by path.
    info: Vec<BTreeMap<Vec<String>, LevelInfo>>,
    /// Paths already submitted for exploration (defensive; serial paths
    /// are unique by construction).
    seen: Vec<HashSet<Vec<String>>>,
}

impl AsyncCrawl<'_> {
    /// Submits under the dimension's adopted span context.
    fn submit(&self, dim: usize, query: Query) -> Ticket {
        let _context = self.tracer.adopt(&self.handles[dim]);
        self.pool.submit_select(query)
    }

    fn start_label(&mut self, dim: usize, iri: String) -> LabelChain {
        self.queries[dim] += 1;
        let preds = &self.config.label_predicates;
        if preds.is_empty() {
            return LabelChain {
                label: Some(humanize(local_name(&iri))),
                iri,
                next_pred: 0,
                ticket: None,
            };
        }
        let ticket = self.submit(dim, crate::labels::label_query(&iri, &preds[0]));
        LabelChain {
            iri,
            next_pred: 0,
            ticket: Some(ticket),
            label: None,
        }
    }

    fn advance_label(&mut self, dim: usize, chain: &mut LabelChain) -> bool {
        while chain.label.is_none() {
            let Some(ticket) = &chain.ticket else {
                // an unresolved chain always has a probe in flight; if the
                // invariant ever breaks, fall back to the local-name label
                // (what the chain running dry would produce) instead of
                // panicking mid-crawl
                chain.label = Some(humanize(local_name(&chain.iri)));
                return true;
            };
            match self.pool.poll(ticket) {
                Poll::Pending => return false,
                Poll::Ready(result) => {
                    chain.ticket = None;
                    let solutions = result.and_then(AsyncResponse::into_select).ok();
                    if let Some(value) = solutions.as_ref().and_then(|s| s.value(0, "l")) {
                        chain.label = Some(value.string_form(self.graph));
                        return true;
                    }
                    chain.next_pred += 1;
                    match self.config.label_predicates.get(chain.next_pred) {
                        Some(pred) => {
                            let query = crate::labels::label_query(&chain.iri, pred);
                            chain.ticket = Some(self.submit(dim, query));
                        }
                        None => {
                            chain.label = Some(humanize(local_name(&chain.iri)));
                            return true;
                        }
                    }
                }
            }
        }
        true
    }

    /// Submits the member count for a new level path.
    fn start_count(&mut self, dim: usize, path: Vec<String>) -> CrawlTask {
        self.queries[dim] += 1;
        let slot = Slot::Pending(self.submit(dim, count_members_query(self.config, &path)));
        CrawlTask::Count { dim, path, slot }
    }

    /// Fans out a non-empty level's attribute/label/roll-up queries.
    fn start_detail(&mut self, dim: usize, path: Vec<String>, member_count: usize) -> CrawlTask {
        self.queries[dim] += 1;
        let attrs = Slot::Pending(self.submit(
            dim,
            member_predicates_query(self.config, &path, Func::IsLiteral),
        ));
        let label = self.start_label(dim, path.last().cloned().unwrap_or_default());
        let rollups = (path.len() < self.config.max_depth).then(|| {
            self.queries[dim] += 1;
            Slot::Pending(self.submit(
                dim,
                member_predicates_query(self.config, &path, Func::IsIri),
            ))
        });
        CrawlTask::Detail {
            dim,
            path,
            member_count,
            attrs,
            label,
            rollups,
        }
    }
}

/// One in-flight unit of the crawl's dependency graph.
enum CrawlTask {
    /// The dimension predicate's own label lookup.
    DimLabel { dim: usize, chain: LabelChain },
    /// A level path waiting for its member count.
    Count {
        dim: usize,
        path: Vec<String>,
        slot: Slot,
    },
    /// A non-empty level waiting for attributes, label, and roll-ups.
    Detail {
        dim: usize,
        path: Vec<String>,
        member_count: usize,
        attrs: Slot,
        label: LabelChain,
        rollups: Option<Slot>,
    },
}

/// Drives every dimension's hierarchy crawl through the async pool at
/// once, then reassembles per-dimension results in serial order.
fn crawl_dimensions_async(
    pool: &AsyncAdapter,
    graph: &re2x_rdf::Graph,
    config: &BootstrapConfig,
    root_handle: &re2x_obs::SpanHandle,
    dim_predicates: Vec<String>,
) -> Result<Vec<DimensionCrawl>, SparqlError> {
    // One span per dimension, parented under the root like the serial and
    // parallel variants; guards stay open for the whole crawl and their
    // handles carry the attribution context into every submission.
    let spans: Vec<_> = dim_predicates
        .iter()
        .map(|predicate| {
            config.tracer.span_under_with(
                root_handle,
                "bootstrap.crawl_dimension",
                &[("dimension", predicate.as_str())],
            )
        })
        .collect();
    let dims = dim_predicates.len();
    let mut crawl = AsyncCrawl {
        pool,
        tracer: &config.tracer,
        config,
        graph,
        handles: spans.iter().map(|s| s.handle()).collect(),
        queries: vec![0; dims],
        info: (0..dims).map(|_| BTreeMap::new()).collect(),
        seen: (0..dims).map(|_| HashSet::new()).collect(),
    };

    let mut dim_labels: Vec<Option<String>> = vec![None; dims];
    let mut tasks: Vec<CrawlTask> = Vec::new();
    for (dim, predicate) in dim_predicates.iter().enumerate() {
        let chain = crawl.start_label(dim, predicate.clone());
        tasks.push(CrawlTask::DimLabel { dim, chain });
        crawl.seen[dim].insert(vec![predicate.clone()]);
        let count = crawl.start_count(dim, vec![predicate.clone()]);
        tasks.push(count);
    }

    while !tasks.is_empty() {
        let mut completed_any = false;
        let mut remaining: Vec<CrawlTask> = Vec::with_capacity(tasks.len());
        for task in tasks {
            match advance_task(task, &mut crawl)? {
                TaskStep::Done { dim, label } => {
                    completed_any = true;
                    if let Some(label) = label {
                        dim_labels[dim] = Some(label);
                    }
                }
                TaskStep::Spawned(spawned) => {
                    completed_any = true;
                    remaining.extend(spawned);
                }
                TaskStep::Pending(task) => remaining.push(task),
            }
        }
        tasks = remaining;
        if !completed_any && !tasks.is_empty() {
            // everything in flight is waiting on pool workers
            std::thread::yield_now();
        }
    }
    drop(spans);

    // Reassemble each dimension in serial depth-first order from the
    // recorded answers — byte-identical to `crawl_dimension`.
    Ok(dim_predicates
        .into_iter()
        .enumerate()
        .map(|(dim, predicate)| {
            let mut levels = Vec::new();
            replay_levels(
                config,
                &crawl.info[dim],
                vec![predicate.clone()],
                &mut levels,
            );
            DimensionCrawl {
                predicate,
                // A chain that somehow failed to resolve degrades to an
                // unlabelled dimension, never a crash.
                label: dim_labels[dim].take().unwrap_or_default(),
                levels,
                queries: crawl.queries[dim],
            }
        })
        .collect())
}

/// Outcome of one advance attempt on a task.
enum TaskStep {
    /// Finished; a dimension-label task also yields its label.
    Done { dim: usize, label: Option<String> },
    /// Finished and scheduled follow-up work.
    Spawned(Vec<CrawlTask>),
    /// Still waiting on at least one response.
    Pending(CrawlTask),
}

fn advance_task(task: CrawlTask, crawl: &mut AsyncCrawl<'_>) -> Result<TaskStep, SparqlError> {
    match task {
        CrawlTask::DimLabel { dim, mut chain } => {
            if crawl.advance_label(dim, &mut chain) {
                Ok(TaskStep::Done {
                    dim,
                    label: chain.label,
                })
            } else {
                Ok(TaskStep::Pending(CrawlTask::DimLabel { dim, chain }))
            }
        }
        CrawlTask::Count {
            dim,
            path,
            mut slot,
        } => {
            if !slot.advance(crawl.pool)? {
                return Ok(TaskStep::Pending(CrawlTask::Count { dim, path, slot }));
            }
            let member_count = count_from(&slot.take_select()?, crawl.graph);
            if member_count == 0 {
                // mirrors the serial early return: no detail queries
                return Ok(TaskStep::Spawned(Vec::new()));
            }
            let detail = crawl.start_detail(dim, path, member_count);
            Ok(TaskStep::Spawned(vec![detail]))
        }
        CrawlTask::Detail {
            dim,
            path,
            member_count,
            mut attrs,
            mut label,
            mut rollups,
        } => {
            let mut done = attrs.advance(crawl.pool)?;
            done &= crawl.advance_label(dim, &mut label);
            if let Some(slot) = &mut rollups {
                done &= slot.advance(crawl.pool)?;
            }
            if !done {
                return Ok(TaskStep::Pending(CrawlTask::Detail {
                    dim,
                    path,
                    member_count,
                    attrs,
                    label,
                    rollups,
                }));
            }
            let attributes = predicates_from(&attrs.take_select()?, crawl.graph);
            let rollups = match rollups {
                Some(slot) => predicates_from(&slot.take_select()?, crawl.graph),
                None => Vec::new(),
            };
            // explore children exactly as the serial recursion would
            let mut spawned = Vec::new();
            for rollup in &rollups {
                if crawl.config.is_excluded(rollup) || path.contains(rollup) {
                    continue;
                }
                let mut child = path.clone();
                child.push(rollup.clone());
                if !crawl.seen[dim].insert(child.clone()) {
                    continue;
                }
                spawned.push(crawl.start_count(dim, child));
            }
            crawl.info[dim].insert(
                path,
                LevelInfo {
                    member_count,
                    attributes,
                    label: label.label.unwrap_or_default(),
                    rollups,
                },
            );
            Ok(TaskStep::Spawned(spawned))
        }
    }
}

/// Emits the recorded levels of one dimension in the exact order the
/// serial `collect_levels` recursion would have pushed them.
fn replay_levels(
    config: &BootstrapConfig,
    info: &BTreeMap<Vec<String>, LevelInfo>,
    path: Vec<String>,
    levels: &mut Vec<PendingLevel>,
) {
    let Some(level) = info.get(&path) else {
        return; // count was zero: serial records nothing and stops
    };
    levels.push(PendingLevel {
        path: path.clone(),
        member_count: level.member_count,
        attributes: level.attributes.clone(),
        label: level.label.clone(),
    });
    if path.len() >= config.max_depth {
        return;
    }
    for rollup in &level.rollups {
        if config.is_excluded(rollup) || path.contains(rollup) {
            continue;
        }
        let mut child = path.clone();
        child.push(rollup.clone());
        if levels.iter().any(|l| l.path == child) {
            continue;
        }
        replay_levels(config, info, child, levels);
    }
}

/// Outcome of an incremental refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshReport {
    /// Observations before the refresh.
    pub observations_before: usize,
    /// Observations after the refresh.
    pub observations_after: usize,
    /// Number of levels whose member counts changed.
    pub levels_changed: usize,
    /// SPARQL queries issued.
    pub endpoint_queries: u64,
}

/// Incrementally refreshes an existing schema after data was *added* to
/// the store (the paper: "if the schema does not change and only new data
/// is added, all the in-memory data structures are updated efficiently
/// without the need for re-computation").
///
/// Recounts observations and per-level members — one query per level
/// instead of the full recursive crawl. Structural changes (new
/// predicates, new hierarchy steps) require a fresh [`bootstrap`].
pub fn refresh(
    endpoint: &dyn SparqlEndpoint,
    schema: &mut VirtualSchemaGraph,
) -> Result<RefreshReport, SparqlError> {
    let config = BootstrapConfig::new(schema.observation_class.clone());
    let mut queries = 0u64;
    let observations_before = schema.observation_count;
    schema.observation_count = count_observations(endpoint, &config, &mut queries)?;
    let mut levels_changed = 0usize;
    let paths: Vec<(crate::model::LevelId, Vec<String>)> = schema
        .levels()
        .iter()
        .map(|l| (l.id, l.path.clone()))
        .collect();
    for (id, path) in paths {
        let count = count_level_members(endpoint, &config, &path, &mut queries)?;
        if count != schema.level(id).member_count {
            schema.set_member_count(id, count);
            levels_changed += 1;
        }
    }
    Ok(RefreshReport {
        observations_before,
        observations_after: schema.observation_count,
        levels_changed,
        endpoint_queries: queries,
    })
}

fn count_observations(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    queries: &mut u64,
) -> Result<usize, SparqlError> {
    let mut query = Query::select_all(vec![observation_type("o", &config.observation_class)]);
    query.select.push(SelectItem::Agg {
        func: AggFunc::Count,
        expr: Expr::Number(1.0),
        alias: "n".to_owned(),
    });
    *queries += 1;
    let solutions = endpoint.select(&query)?;
    Ok(solutions
        .value(0, "n")
        .and_then(|v| v.as_number(endpoint.graph()))
        .unwrap_or(0.0) as usize)
}

/// `SELECT DISTINCT ?p WHERE { ?o a C . ?o ?p ?x . FILTER(kind(?x)) }`.
fn typed_object_predicates(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    kind: Func,
    queries: &mut u64,
) -> Result<Vec<String>, SparqlError> {
    let mut query = Query::select_all(vec![
        observation_type("o", &config.observation_class),
        PatternElement::Triple(TriplePattern::with_pred_var(
            TermPattern::Var("o".to_owned()),
            "p",
            TermPattern::Var("x".to_owned()),
        )),
        PatternElement::Filter(Expr::Call(kind, vec![Expr::var("x")])),
    ]);
    query.select.push(SelectItem::Var("p".to_owned()));
    query.distinct = true;
    *queries += 1;
    let solutions = endpoint.select(&query)?;
    let graph = endpoint.graph();
    let mut predicates: Vec<String> = solutions
        .rows
        .iter()
        .filter_map(|row| row[0].as_ref().map(|v| v.string_form(graph)))
        .collect();
    predicates.sort_unstable();
    Ok(predicates)
}

/// Records the level reached by `path` and recurses into its roll-ups,
/// depth-first.
fn collect_levels(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    levels: &mut Vec<PendingLevel>,
    path: Vec<String>,
    queries: &mut u64,
) -> Result<(), SparqlError> {
    // distinct members at this level
    let member_count = count_level_members(endpoint, config, &path, queries)?;
    if member_count == 0 {
        return Ok(());
    }
    // literal-valued predicates on this level's members are its attributes
    let attributes = member_predicates(endpoint, config, &path, Func::IsLiteral, queries)?;
    let label = label_of(
        endpoint,
        path.last().map(String::as_str).unwrap_or_default(),
        &config.label_predicates,
    );
    *queries += 1;
    levels.push(PendingLevel {
        path: path.clone(),
        member_count,
        attributes,
        label,
    });

    if path.len() >= config.max_depth {
        return Ok(());
    }
    // IRI-valued predicates lead to coarser levels
    for rollup in member_predicates(endpoint, config, &path, Func::IsIri, queries)? {
        if config.is_excluded(&rollup) || path.contains(&rollup) {
            continue; // cycle protection: a predicate may not repeat in a path
        }
        let mut child = path.clone();
        child.push(rollup);
        if levels.iter().any(|l| l.path == child) {
            continue;
        }
        collect_levels(endpoint, config, levels, child, queries)?;
    }
    Ok(())
}

/// `SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?o a C . ?o <path> ?m }`.
fn count_members_query(config: &BootstrapConfig, path: &[String]) -> Query {
    let mut query = Query::select_all(vec![
        observation_type("o", &config.observation_class),
        path_to_member("o", path, "m"),
    ]);
    query.select.push(SelectItem::Agg {
        func: AggFunc::CountDistinct,
        expr: Expr::var("m"),
        alias: "n".to_owned(),
    });
    query
}

fn count_from(solutions: &Solutions, graph: &re2x_rdf::Graph) -> usize {
    solutions
        .value(0, "n")
        .and_then(|v| v.as_number(graph))
        .unwrap_or(0.0) as usize
}

/// `SELECT DISTINCT ?q WHERE { ?o a C . ?o <path> ?m . ?m ?q ?x . FILTER(kind(?x)) }`.
fn member_predicates_query(config: &BootstrapConfig, path: &[String], kind: Func) -> Query {
    let mut query = Query::select_all(vec![
        observation_type("o", &config.observation_class),
        path_to_member("o", path, "m"),
        PatternElement::Triple(TriplePattern::with_pred_var(
            TermPattern::Var("m".to_owned()),
            "q",
            TermPattern::Var("x".to_owned()),
        )),
        PatternElement::Filter(Expr::Call(kind, vec![Expr::var("x")])),
    ]);
    query.select.push(SelectItem::Var("q".to_owned()));
    query.distinct = true;
    query
}

fn predicates_from(solutions: &Solutions, graph: &re2x_rdf::Graph) -> Vec<String> {
    let mut predicates: Vec<String> = solutions
        .rows
        .iter()
        .filter_map(|row| row[0].as_ref().map(|v| v.string_form(graph)))
        .collect();
    predicates.sort_unstable();
    predicates
}

fn count_level_members(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    path: &[String],
    queries: &mut u64,
) -> Result<usize, SparqlError> {
    // COUNT(DISTINCT ?m): one result row instead of one per member
    *queries += 1;
    let solutions = endpoint.select(&count_members_query(config, path))?;
    Ok(count_from(&solutions, endpoint.graph()))
}

fn member_predicates(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    path: &[String],
    kind: Func,
    queries: &mut u64,
) -> Result<Vec<String>, SparqlError> {
    *queries += 1;
    let solutions = endpoint.select(&member_predicates_query(config, path, kind))?;
    Ok(predicates_from(&solutions, endpoint.graph()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::LocalEndpoint;

    /// Tiny asylum KG with typed observations, two-level hierarchies, and a
    /// cycle (partnerCountry ↔ partnerCountry) to exercise protection.
    fn fixture() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:origin rdfs:label "Country of Origin" .
            ex:applicants rdfs:label "Num Applicants" .

            ex:Syria ex:inContinent ex:Asia ; rdfs:label "Syria" ; ex:partner ex:Iraq .
            ex:Iraq ex:inContinent ex:Asia ; rdfs:label "Iraq" ; ex:partner ex:Syria .
            ex:Asia rdfs:label "Asia" .
            ex:Germany rdfs:label "Germany" .
            ex:France rdfs:label "France" .
            ex:m2014 ex:inYear ex:y2014 ; rdfs:label "October 2014" .
            ex:y2014 rdfs:label "2014" .

            ex:o1 a ex:Observation ; ex:origin ex:Syria ; ex:dest ex:Germany ;
                  ex:refPeriod ex:m2014 ; ex:applicants 300 .
            ex:o2 a ex:Observation ; ex:origin ex:Iraq ; ex:dest ex:France ;
                  ex:refPeriod ex:m2014 ; ex:applicants 120 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        LocalEndpoint::new(g)
    }

    #[test]
    fn discovers_full_schema_from_class_only() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        let s = &report.schema;
        assert_eq!(s.observation_count, 2);
        // measures
        assert_eq!(s.measures().len(), 1);
        assert_eq!(s.measures()[0].predicate, "http://ex/applicants");
        assert_eq!(s.measures()[0].label, "Num Applicants");
        // dimensions: origin, dest, refPeriod
        assert_eq!(s.dimensions().len(), 3);
        assert_eq!(
            s.dimension_by_predicate("http://ex/origin")
                .map(|d| s.dimension(d).label.as_str()),
            Some("Country of Origin")
        );
        // levels: origin (+continent, +partner, +partner/continent...),
        // dest, refPeriod (+year)
        let origin_base = s
            .level_by_path(&["http://ex/origin".to_owned()])
            .expect("base level");
        assert_eq!(s.level(origin_base).member_count, 2);
        let continent = s
            .level_by_path(&[
                "http://ex/origin".to_owned(),
                "http://ex/inContinent".to_owned(),
            ])
            .expect("continent level");
        assert_eq!(s.level(continent).member_count, 1);
        let year = s
            .level_by_path(&[
                "http://ex/refPeriod".to_owned(),
                "http://ex/inYear".to_owned(),
            ])
            .expect("year level");
        assert_eq!(s.level(year).member_count, 1);
        // attributes discovered on members
        assert!(s
            .level(origin_base)
            .attribute_predicates
            .contains(&re2x_rdf::vocab::rdfs::LABEL.to_owned()));
        assert!(report.endpoint_queries > 5);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn cycle_protection_terminates_partner_loop() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        let s = &report.schema;
        // partner chain exists but `partner` never repeats within a path
        let partner = s.level_by_path(&[
            "http://ex/origin".to_owned(),
            "http://ex/partner".to_owned(),
        ]);
        assert!(partner.is_some(), "one partner hop explored");
        for level in s.levels() {
            let mut seen = std::collections::HashSet::new();
            for p in &level.path {
                assert!(seen.insert(p), "predicate repeated in {:?}", level.path);
            }
            assert!(level.depth() <= config.max_depth);
        }
    }

    #[test]
    fn excluded_predicates_do_not_become_dimensions() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        assert!(report
            .schema
            .dimension_by_predicate(vocab::rdf::TYPE)
            .is_none());
    }

    #[test]
    fn max_depth_limits_exploration() {
        let ep = fixture();
        let mut config = BootstrapConfig::new("http://ex/Observation");
        config.max_depth = 1;
        let report = bootstrap(&ep, &config).expect("bootstrap");
        assert!(report.schema.levels().iter().all(|l| l.depth() == 1));
    }

    #[test]
    fn refresh_recounts_without_recrawling() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        let mut schema = report.schema;

        // add an observation over a *new* origin member to the store
        let mut graph = ep.into_graph();
        re2x_rdf::io::parse_turtle(
            r#"@prefix ex: <http://ex/> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               ex:Eritrea ex:inContinent ex:Africa ; rdfs:label "Eritrea" .
               ex:o3 a ex:Observation ; ex:origin ex:Eritrea ; ex:dest ex:Germany ;
                     ex:refPeriod ex:m2014 ; ex:applicants 42 ."#,
            &mut graph,
        )
        .expect("update parses");
        let ep = LocalEndpoint::new(graph);

        let refresh_report = refresh(&ep, &mut schema).expect("refresh");
        assert_eq!(refresh_report.observations_before, 2);
        assert_eq!(refresh_report.observations_after, 3);
        assert_eq!(schema.observation_count, 3);
        assert!(
            refresh_report.levels_changed >= 2,
            "origin country + continent grew"
        );
        let origin = schema
            .level_by_path(&["http://ex/origin".to_owned()])
            .expect("level kept");
        assert_eq!(schema.level(origin).member_count, 3, "Syria, Iraq, Eritrea");
        // refresh is much cheaper than the crawl: one query per level + 1
        assert_eq!(
            refresh_report.endpoint_queries,
            schema.levels().len() as u64 + 1
        );
        assert!(refresh_report.endpoint_queries < report.endpoint_queries);
    }

    #[test]
    fn empty_class_yields_empty_schema() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/NoSuchClass");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        assert_eq!(report.schema.observation_count, 0);
        assert!(report.schema.dimensions().is_empty());
        assert!(report.schema.measures().is_empty());
    }
}
