//! Programmatic construction of the query shapes RE²xOLAP issues against
//! the endpoint (observation typing, observation-to-member paths).

use re2x_rdf::vocab;
use re2x_sparql::{PatternElement, TermPattern, TriplePattern};

/// `?<obs_var> rdf:type <observation_class>`.
pub fn observation_type(obs_var: &str, observation_class: &str) -> PatternElement {
    PatternElement::Triple(TriplePattern::new(
        TermPattern::Var(obs_var.to_owned()),
        vocab::rdf::TYPE,
        TermPattern::Iri(observation_class.to_owned()),
    ))
}

/// `?<obs_var> <p1>/<p2>/… ?<member_var>` — the sequence path from an
/// observation to a member of the level identified by `path`.
pub fn path_to_member(obs_var: &str, path: &[String], member_var: &str) -> PatternElement {
    PatternElement::Triple(TriplePattern::with_path(
        TermPattern::Var(obs_var.to_owned()),
        path.to_vec(),
        TermPattern::Var(member_var.to_owned()),
    ))
}

/// `?<obs_var> <p1>/<p2>/… <member_iri>` — the path pinned to a concrete
/// member (used for validity checks).
pub fn path_to_concrete_member(obs_var: &str, path: &[String], member_iri: &str) -> PatternElement {
    PatternElement::Triple(TriplePattern::with_path(
        TermPattern::Var(obs_var.to_owned()),
        path.to_vec(),
        TermPattern::Iri(member_iri.to_owned()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_sparql::{query_to_sparql, Query};

    #[test]
    fn pattern_shapes_render_as_expected() {
        let q = Query::select_all(vec![
            observation_type("obs", "http://ex/Obs"),
            path_to_member(
                "obs",
                &[
                    "http://ex/origin".to_owned(),
                    "http://ex/inContinent".to_owned(),
                ],
                "m",
            ),
            path_to_concrete_member("obs", &["http://ex/dest".to_owned()], "http://ex/Germany"),
        ]);
        let text = query_to_sparql(&q);
        assert!(
            text.contains("?obs <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Obs>")
        );
        assert!(text.contains("?obs <http://ex/origin> / <http://ex/inContinent> ?m"));
        assert!(text.contains("?obs <http://ex/dest> <http://ex/Germany>"));
    }
}
