//! discarded-result FIRE fixture: both discard shapes on a same-file
//! `Result`-returning function.

pub fn persist(path: &str) -> Result<usize, String> {
    Ok(path.len())
}

pub fn run(path: &str) {
    let _ = persist(path);
    persist(path);
}
