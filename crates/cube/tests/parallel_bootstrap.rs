//! Differential test: the parallel bootstrap crawl must produce a schema
//! *identical* to the serial one — same dimensions, levels (in the same
//! order), member counts, attributes, labels, and the same number of
//! endpoint queries — on both synthetic datasets with non-trivial
//! hierarchies.

use re2x_cube::{bootstrap, bootstrap_parallel, BootstrapConfig};
use re2x_sparql::LocalEndpoint;

fn assert_parallel_matches_serial(dataset: re2x_datagen::Dataset) {
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let endpoint = LocalEndpoint::new(dataset.graph);

    let serial = bootstrap(&endpoint, &config).expect("serial bootstrap");
    let parallel = bootstrap_parallel(&endpoint, &config).expect("parallel bootstrap");

    assert_eq!(
        parallel.schema, serial.schema,
        "parallel schema diverges from serial for {}",
        dataset.name
    );
    assert_eq!(
        parallel.endpoint_queries, serial.endpoint_queries,
        "parallel crawl issued a different number of queries for {}",
        dataset.name
    );
    // sanity: the discovered shape is the one the generator committed to
    assert_eq!(
        serial.schema.dimensions().len(),
        dataset.expected.dimensions
    );
    assert_eq!(serial.schema.measures().len(), dataset.expected.measures);
}

#[test]
fn eurostat_parallel_equals_serial() {
    assert_parallel_matches_serial(re2x_datagen::eurostat::generate(600, 7));
}

#[test]
fn dbpedia_parallel_equals_serial() {
    // dbpedia has the deepest hierarchies and M-to-N roll-ups; keep the
    // observation count small so the crawl stays fast
    assert_parallel_matches_serial(re2x_datagen::dbpedia::generate(400, 11));
}

#[test]
fn parallel_bootstrap_works_through_a_cache() {
    use re2x_sparql::CachingEndpoint;
    let dataset = re2x_datagen::eurostat::generate(300, 3);
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let endpoint = CachingEndpoint::new(LocalEndpoint::new(dataset.graph));

    let cold = bootstrap_parallel(&endpoint, &config).expect("cold bootstrap");
    let inner_after_cold = endpoint.stats().selects;
    let warm = bootstrap_parallel(&endpoint, &config).expect("warm bootstrap");

    assert_eq!(warm.schema, cold.schema);
    // the second crawl is answered (almost) entirely from the cache: the
    // inner endpoint saw few or no additional queries
    let inner_after_warm = endpoint.stats().selects;
    assert!(
        inner_after_warm - inner_after_cold < inner_after_cold / 2,
        "warm crawl re-issued too many queries: {inner_after_cold} then {inner_after_warm}"
    );
    assert!(endpoint.stats().cache_hits > 0);
}
