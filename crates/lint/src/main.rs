//! The `re2x-lint` binary: lints the workspace and gates on the baseline.
//!
//! ```text
//! re2x-lint [--root DIR] [--format text|json] [--baseline FILE]
//!           [--write-baseline] [--no-baseline]
//! ```
//!
//! Exit codes: 0 clean (every finding baselined or allowed), 1 findings
//! outside the baseline or stale baseline entries, 2 usage/IO error.

// lint:allow-file(no-debug-output, rendering findings to the terminal is this binary's job)

use re2x_lint::engine::{apply_baseline, collect_files, lint_files, report_to_json, to_baseline};
use re2x_lint::findings::finding_to_text;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format: Format::Text,
        baseline: None,
        write_baseline: false,
        no_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first directory containing
/// a `crates/` subdirectory and a `Cargo.toml`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root found (looked for crates/ + Cargo.toml)".to_owned());
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => find_root()?,
    };
    let files = collect_files(&root)?;
    let result = lint_files(&files);

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    if opts.write_baseline {
        std::fs::write(&baseline_path, to_baseline(&result.findings))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        eprintln!(
            "re2x-lint: wrote {} entries to {}",
            result.findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_lines: Vec<String> = if opts.no_baseline {
        Vec::new()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text.lines().map(str::to_owned).collect(),
            Err(_) => Vec::new(), // absent baseline == empty baseline
        }
    };
    let outcome = apply_baseline(result.findings.clone(), &baseline_lines);

    match opts.format {
        Format::Json => {
            println!("{}", report_to_json(&outcome, &result));
        }
        Format::Text => {
            for finding in &outcome.new_findings {
                println!("{}", finding_to_text(finding));
            }
            for stale in &outcome.stale {
                println!("stale baseline entry (violation fixed? prune it): {stale}");
            }
            println!(
                "re2x-lint: {} finding(s), {} baselined, {} allowed, {} stale baseline entr(ies); {} registered lock(s), {} nesting edge(s)",
                outcome.new_findings.len(),
                outcome.matched,
                result.suppressed,
                outcome.stale.len(),
                result.registrations.len(),
                result.edges.len()
            );
        }
    }

    if outcome.new_findings.is_empty() && outcome.stale.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("re2x-lint: {message}");
            ExitCode::from(2)
        }
    }
}
