//! Integration coverage of the future-work extensions over generated
//! datasets: ranking, negative examples, profiling, transcripts, the
//! Spade-style explorer, incremental refresh, and EXPLAIN — everything
//! working together on one KG.

use re2x_cube::{bootstrap, refresh, BootstrapConfig};
use re2x_datagen::Dataset;
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{
    exclude_negatives, profile, rank_interpretations, rank_refinements, session_transcript,
    MatchMode, RefineOp, ReolapConfig, Session, SessionConfig,
};

fn eurostat() -> (Dataset, LocalEndpoint, re2x_cube::VirtualSchemaGraph) {
    let mut dataset = re2x_datagen::eurostat::generate(1_000, 17);
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    (dataset, endpoint, schema)
}

#[test]
fn ranking_orders_ambiguous_country_interpretations() {
    let (_d, endpoint, schema) = eurostat();
    // "Germany" is both an origin (citizen) and a destination (geo) member
    let outcome = re2xolap::reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default())
        .expect("synthesis");
    assert_eq!(outcome.queries.len(), 2, "two dimension interpretations");
    let ranked = rank_interpretations(&schema, outcome.queries);
    // both are exact base-level matches; the destination level has 32
    // members vs 171 origins, so it is the more specific interpretation
    assert!(
        ranked[0].query.description.contains("Destination"),
        "{}",
        ranked[0].query.description
    );
    assert!(ranked[0].score() >= ranked[1].score());
    for r in &ranked {
        assert_eq!(r.factors.exactness, 1.0);
        assert_eq!(r.factors.base_affinity, 1.0);
    }
}

#[test]
fn refinement_ranking_is_usable_in_a_session() {
    let (_d, endpoint, schema) = eurostat();
    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany"]).expect("synthesis");
    let step = session.choose(outcome.queries[0].clone()).expect("runs");
    let rows = step.solutions.len();
    let refinements = session.refinements(RefineOp::Disaggregate).expect("dis");
    let ranked = rank_refinements(&schema, refinements, rows, 20);
    assert!(!ranked.is_empty());
    // estimates ascendingly ordered by distance to the 20-row target
    for w in ranked.windows(2) {
        assert!(w[0].1.abs_diff(20) <= w[1].1.abs_diff(20));
    }
}

#[test]
fn negatives_compose_with_refinements_on_generated_data() {
    let (_d, endpoint, schema) = eurostat();
    let outcome = re2xolap::reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default())
        .expect("synthesis");
    let query = outcome
        .queries
        .iter()
        .find(|q| q.description.contains("Destination"))
        .expect("destination interpretation")
        .clone();
    let negative = exclude_negatives(&endpoint, &schema, &query, &["France"], MatchMode::Exact)
        .expect("negatives");
    assert_eq!(negative.excluded.len(), 1);
    let sols = endpoint.select(&negative.query.query).expect("runs");
    let france = endpoint
        .graph()
        .iri_id("http://data.example.org/eurostat/member/country/1");
    for row in &sols.rows {
        for cell in row.iter().flatten() {
            if let re2x_sparql::Value::Term(id) = cell {
                assert_ne!(Some(*id), france, "France (country/1) excluded");
            }
        }
    }
}

#[test]
fn profile_matches_schema_statistics() {
    let (_d, endpoint, schema) = eurostat();
    let p = profile(&endpoint, &schema).expect("profile");
    assert_eq!(p.observations, 1_000);
    assert_eq!(p.dimensions.len(), 4);
    let rendered = p.render();
    assert!(rendered.contains("Country of Origin"));
    assert!(rendered.contains("measure Num Applicants"));
    // member counts agree with the schema
    for dim in &p.dimensions {
        for level in &dim.levels {
            let id = schema.level_by_path(&level.path).expect("level exists");
            assert_eq!(schema.level(id).member_count, level.member_count);
        }
    }
}

#[test]
fn transcript_of_a_generated_data_session() {
    let (_d, endpoint, schema) = eurostat();
    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany"]).expect("synthesis");
    session.choose(outcome.queries[0].clone()).expect("runs");
    let md = session_transcript(&session, endpoint.graph());
    assert!(md.contains("## Step 1:"));
    assert!(md.contains("SUM"));
}

#[test]
fn spade_baseline_finds_skew_without_input() {
    let (_d, endpoint, schema) = eurostat();
    let found = re2x_baselines::interesting_aggregates(&endpoint, &schema, 5).expect("explore");
    assert_eq!(found.len(), 5);
    for w in found.windows(2) {
        assert!(w[0].score >= w[1].score, "sorted by interestingness");
    }
    // proposals execute
    let sols = endpoint.select(&found[0].query).expect("runs");
    assert_eq!(sols.len(), found[0].groups);
}

#[test]
fn incremental_refresh_after_appending_observations() {
    let (dataset, endpoint, mut schema) = eurostat();
    let mut graph = endpoint.into_graph();
    // append 50 more observations by re-running the generator at a larger
    // scale and diffing is overkill — instead clone member links for new
    // observation IRIs
    let type_p = graph.intern_iri(re2x_rdf::vocab::rdf::TYPE);
    let class = graph.intern_iri(&dataset.observation_class);
    let sex = graph.intern_iri("http://data.example.org/eurostat/sex");
    let sex_member = graph.intern_iri("http://data.example.org/eurostat/member/sex/0");
    let measure = graph.intern_iri("http://data.example.org/eurostat/numApplicants");
    for i in 0..50 {
        let obs = graph.intern_iri(format!("http://data.example.org/eurostat/obs/extra{i}"));
        let v = graph.intern_literal(re2x_rdf::Literal::integer(7));
        graph.insert_ids(obs, type_p, class);
        graph.insert_ids(obs, sex, sex_member);
        graph.insert_ids(obs, measure, v);
    }
    let endpoint = LocalEndpoint::new(graph);
    let report = refresh(&endpoint, &mut schema).expect("refresh");
    assert_eq!(report.observations_before, 1_000);
    assert_eq!(report.observations_after, 1_050);
    assert_eq!(schema.observation_count, 1_050);
}

#[test]
fn explain_covers_synthesized_queries() {
    let (_d, endpoint, schema) = eurostat();
    let outcome = re2xolap::reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default())
        .expect("synthesis");
    let plan = re2x_sparql::explain(endpoint.graph(), &outcome.queries[0].query).expect("explain");
    assert!(plan.contains("group by"), "{plan}");
    assert!(plan.contains("cost estimate"), "{plan}");
}
