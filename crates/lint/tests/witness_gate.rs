//! The runtime half of the lock-order cross-check: drive real concurrent
//! workloads — bus fan-out, cache hammering, the async worker pool, and
//! a sharded scatter — with the lock witness recording, then assert that
//! every nesting edge threads actually performed is present in the
//! static registry graph (extracted ∪ declared `// lock-order:` edges)
//! and that the combined graph stays acyclic. A deliberate runtime cycle
//! driven through the same witness is still detected and reported with
//! lock names and acquiring call sites, so the check has teeth.

use re2x_lint::engine::{collect_files, lint_files};
use re2x_lint::rules::lock_order::{find_cycles, LockEdge};
use re2x_obs::{lock_or_recover, witness_edges, witness_enable_for_tests, BusEvent, EventBus};
use re2x_rdf::io::parse_turtle;
use re2x_rdf::Graph;
use re2x_sparql::{
    parse_query, with_async_endpoint, AsyncRequest, AsyncSparqlEndpoint, CachingEndpoint,
    LocalEndpoint, ShardedEndpoint, SparqlEndpoint,
};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Asylum micro-cube with observation-typed facts, matching the sharded
/// endpoint's default fact class so group-by queries scatter.
fn graph() -> Graph {
    let mut g = Graph::new();
    parse_turtle(
        r#"
        @prefix ex: <http://ex/> .
        @prefix qb: <http://purl.org/linked-data/cube#> .
        ex:o1 a qb:Observation ; ex:dest ex:Germany ; ex:applicants 300 .
        ex:o2 a qb:Observation ; ex:dest ex:Germany ; ex:applicants 600 .
        ex:o3 a qb:Observation ; ex:dest ex:France ; ex:applicants 100 .
        ex:Germany ex:label "Germany" .
        ex:France ex:label "France" .
        "#,
        &mut g,
    )
    .expect("parse fixture");
    g
}

/// Concurrent publishers fanning out to two subscribers: the one intended
/// nesting in the workspace (`obs.bus.subscribers -> obs.bus.ring`).
fn drive_bus() {
    let bus = EventBus::new();
    let streams: Vec<_> = (0..2).map(|_| bus.subscribe(64)).collect();
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let bus = bus.clone();
            scope.spawn(move || {
                for i in 0..20 {
                    bus.publish(&BusEvent::Counter {
                        name: format!("witness.gate.{t}"),
                        delta: i,
                        at: Duration::from_micros(i),
                    });
                }
            });
        }
    });
    for stream in &streams {
        assert!(!stream.poll().is_empty(), "fan-out delivered");
    }
}

/// Hammers one caching endpoint from three threads (cache state + local
/// stats locks), then drives the async adapter's scoped worker pool
/// (shared-queue lock and both condvars) over the same stack.
fn drive_cache_and_async() {
    let ep = CachingEndpoint::new(LocalEndpoint::new(graph()));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let ep = &ep;
            scope.spawn(move || {
                for _ in 0..10 {
                    ep.select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                        .expect("select");
                    ep.ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
                        .expect("ask");
                }
            });
        }
    });
    with_async_endpoint(&ep, 3, |pool| {
        let query = parse_query("SELECT ?d WHERE { ?o <http://ex/dest> ?d }").expect("parse");
        let tickets: Vec<_> = (0..8)
            .map(|_| pool.submit(AsyncRequest::Select(query.clone())))
            .collect();
        for ticket in tickets {
            pool.wait(ticket).expect("async select");
        }
    });
}

/// A group-by aggregate scatters across shard threads (per-shard local
/// stats plus the sharded scatter counter).
fn drive_sharded() {
    let ep = ShardedEndpoint::new(graph(), 3);
    let query = parse_query(
        "SELECT ?d (SUM(?n) AS ?total) WHERE {
            ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n
         } GROUP BY ?d",
    )
    .expect("parse");
    ep.select(&query).expect("scatter select");
    assert!(ep.scatter_count() >= 1, "the aggregate must scatter");
}

#[test]
fn observed_nesting_is_a_subset_of_the_static_registry() {
    witness_enable_for_tests();
    drive_bus();
    drive_cache_and_async();
    drive_sharded();

    let files = collect_files(workspace_root()).expect("workspace sources readable");
    let result = lint_files(&files);
    let allowed: Vec<(&str, &str)> = result
        .edges
        .iter()
        .chain(result.declared.iter())
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();

    // `gate.cycle.*` locks belong to the deliberate-cycle test below,
    // which shares this process's witness state.
    let observed: Vec<_> = witness_edges()
        .into_iter()
        .filter(|e| !e.from.starts_with("gate.cycle.") && !e.to.starts_with("gate.cycle."))
        .collect();
    assert!(
        observed
            .iter()
            .any(|e| e.from == "obs.bus.subscribers" && e.to == "obs.bus.ring"),
        "the bus fan-out nesting must be witnessed: {observed:?}"
    );
    for edge in &observed {
        assert!(
            allowed
                .iter()
                .any(|(f, t)| *f == edge.from && *t == edge.to),
            "runtime nesting `{} -> {}` (acquired at {}) is not in the static \
             lock-order registry; declare `// lock-order: {} -> {}` if it is \
             intended, or drop the outer guard first",
            edge.from,
            edge.to,
            edge.site(),
            edge.from,
            edge.to,
        );
    }

    // The union of what the lint extracted, what the code declares, and
    // what threads actually did must stay one acyclic graph.
    let mut combined: Vec<LockEdge> = result.edges.clone();
    combined.extend(result.declared.iter().cloned());
    combined.extend(observed.iter().map(|e| LockEdge {
        from: e.from.to_owned(),
        to: e.to.to_owned(),
        file: e.file.to_owned(),
        line: e.line,
    }));
    let cycles = find_cycles(&combined);
    assert!(
        cycles.is_empty(),
        "static ∪ observed lock graph has a cycle: {:?}",
        cycles
            .iter()
            .map(|c| c.path.join(" -> "))
            .collect::<Vec<_>>()
    );
}

#[test]
fn a_runtime_cycle_is_still_detected() {
    witness_enable_for_tests();
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    {
        let _a = lock_or_recover("gate.cycle.a", &a);
        let _b = lock_or_recover("gate.cycle.b", &b);
    }
    {
        let _b = lock_or_recover("gate.cycle.b", &b);
        let _a = lock_or_recover("gate.cycle.a", &a);
    }

    let cycle_edges: Vec<LockEdge> = witness_edges()
        .into_iter()
        .filter(|e| e.from.starts_with("gate.cycle."))
        .map(|e| LockEdge {
            from: e.from.to_owned(),
            to: e.to.to_owned(),
            file: e.file.to_owned(),
            line: e.line,
        })
        .collect();
    assert_eq!(
        cycle_edges.len(),
        2,
        "both nesting orders observed: {cycle_edges:?}"
    );
    assert!(
        cycle_edges
            .iter()
            .all(|e| e.file.ends_with("witness_gate.rs")),
        "edges carry the acquiring call site: {cycle_edges:?}"
    );

    let cycles = find_cycles(&cycle_edges);
    assert_eq!(cycles.len(), 1, "the A->B->A cycle is found: {cycles:?}");
    let path = cycles[0].path.join(" -> ");
    assert!(
        path.contains("gate.cycle.a") && path.contains("gate.cycle.b"),
        "the report names both locks: {path}"
    );
}
