//! The `repro scale` experiment: persistent snapshots vs regeneration
//! across a ladder of observation counts.
//!
//! For each rung the harness (1) regenerates the Eurostat dataset from
//! scratch — the cost every run used to pay, (2) writes the
//! dictionary-encoded snapshot, (3) loads it back through the cache
//! (`re2x_datagen::cache`), and (4) proves the loaded graph identical to
//! the generated one: equal [`graph_digest`]s (term dictionary in interning
//! order plus the full sorted triple stream) *and* byte-identical answers
//! to a probe-query workload. It then bootstraps the schema and runs one
//! ReOLAP synthesis on the *loaded* graph, so the rung's analytics run
//! end-to-end from the snapshot.
//!
//! Two claims are checked across the ladder:
//!
//! * **load speedup** — snapshot load must be ≥ 5× faster than
//!   regeneration on every rung (the point of zero-reparse loading);
//! * **schema-bound analytics** — bootstrap and ReOLAP latency must grow
//!   sublinearly in the observation count (the paper's central §5.3 claim:
//!   cost tracks schema complexity, not data volume).

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_datagen::cache;
use re2x_rdf::graph_digest;
use re2x_sparql::{parse_query, LocalEndpoint, Solutions, SparqlEndpoint};
use re2xolap::{reolap, ReolapConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Measurements for one observation-count rung.
#[derive(Debug, Clone)]
pub struct ScaleRung {
    /// Observation count of this rung.
    pub observations: usize,
    /// Triples in the generated graph.
    pub triples: usize,
    /// Time to generate the dataset from scratch.
    pub generate: Duration,
    /// Time to write the snapshot.
    pub write: Duration,
    /// Time to load the snapshot back (through the cache).
    pub load: Duration,
    /// `true` if the post-write cache acquisition was a hit (it must be).
    pub cache_hit: bool,
    /// `true` if the loaded graph proved identical to the generated one
    /// (digest equality + byte-identical probe-query answers).
    pub identical: bool,
    /// Schema bootstrap time on the loaded graph.
    pub bootstrap: Duration,
    /// Members discovered by the bootstrap (shape sanity).
    pub members: usize,
    /// One ReOLAP synthesis on the loaded graph.
    pub reolap: Duration,
}

impl ScaleRung {
    /// Regeneration time over snapshot load time.
    pub fn load_speedup(&self) -> f64 {
        let load = self.load.as_secs_f64().max(1e-9);
        self.generate.as_secs_f64() / load
    }
}

/// The full ladder.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// RNG seed the ladder ran with.
    pub seed: u64,
    /// One row per rung, ascending observation count.
    pub rows: Vec<ScaleRung>,
}

impl ScaleReport {
    /// The smallest per-rung load speedup.
    pub fn min_load_speedup(&self) -> f64 {
        self.rows
            .iter()
            .map(ScaleRung::load_speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// `true` if every rung proved generated ≡ loaded.
    pub fn all_identical(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(|r| r.identical && r.cache_hit)
    }

    /// Growth factor of a latency across the ladder, relative to the
    /// growth factor of the observation count: `< 0.5` means the latency
    /// grew less than half as fast as the data — clearly sublinear.
    ///
    /// Latencies are floored at 1 ms first: below that, constant overheads
    /// and timer resolution dominate, and a 60 µs → 120 µs wobble on a 4×
    /// data ladder is schema-bound by inspection, not linear growth.
    fn relative_growth(&self, f: impl Fn(&ScaleRung) -> Duration) -> f64 {
        const FLOOR: f64 = 1e-3;
        let (Some(first), Some(last)) = (self.rows.first(), self.rows.last()) else {
            return f64::INFINITY;
        };
        if first.observations == 0 || last.observations <= first.observations {
            return f64::INFINITY;
        }
        let obs_ratio = last.observations as f64 / first.observations as f64;
        let time_ratio = f(last).as_secs_f64().max(FLOOR) / f(first).as_secs_f64().max(FLOOR);
        time_ratio / obs_ratio
    }

    /// `true` if bootstrap latency is schema-bound across the ladder.
    pub fn bootstrap_sublinear(&self) -> bool {
        self.relative_growth(|r| r.bootstrap) < 0.5
    }

    /// `true` if ReOLAP synthesis latency is schema-bound across the ladder.
    pub fn reolap_sublinear(&self) -> bool {
        self.relative_growth(|r| r.reolap) < 0.5
    }

    /// Machine-readable form, written to `bench_results/scale.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"dataset\": \"eurostat\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"min_load_speedup\": {:.2},",
            self.min_load_speedup()
        );
        let _ = writeln!(out, "  \"all_identical\": {},", self.all_identical());
        let _ = writeln!(
            out,
            "  \"bootstrap_sublinear\": {},",
            self.bootstrap_sublinear()
        );
        let _ = writeln!(out, "  \"reolap_sublinear\": {},", self.reolap_sublinear());
        out.push_str("  \"rungs\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"observations\": {}, \"triples\": {}, \
                 \"generate_us\": {}, \"write_us\": {}, \"load_us\": {}, \
                 \"load_speedup\": {:.2}, \"cache_hit\": {}, \"identical\": {}, \
                 \"bootstrap_us\": {}, \"members\": {}, \"reolap_us\": {}}}{comma}",
                r.observations,
                r.triples,
                r.generate.as_micros(),
                r.write.as_micros(),
                r.load.as_micros(),
                r.load_speedup(),
                r.cache_hit,
                r.identical,
                r.bootstrap.as_micros(),
                r.members,
                r.reolap.as_micros(),
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>12} {:>10} {:>10} {:>10} {:>9} {:>5} {:>10} {:>10}",
            "observations",
            "gen ms",
            "load ms",
            "speedup",
            "identical",
            "hit",
            "boot ms",
            "reolap ms"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>12} {:>10.1} {:>10.1} {:>9.1}x {:>9} {:>5} {:>10.1} {:>10.1}",
                r.observations,
                r.generate.as_secs_f64() * 1e3,
                r.load.as_secs_f64() * 1e3,
                r.load_speedup(),
                r.identical,
                r.cache_hit,
                r.bootstrap.as_secs_f64() * 1e3,
                r.reolap.as_secs_f64() * 1e3,
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "min load speedup {:.1}x (gate ≥5x) | identical {} | bootstrap sublinear {} | reolap sublinear {}",
            self.min_load_speedup(),
            self.all_identical(),
            self.bootstrap_sublinear(),
            self.reolap_sublinear(),
        );
        out
    }
}

/// The probe workload whose answers must be byte-identical between the
/// generated and the snapshot-loaded graph. Deliberately schema-bound
/// queries (so the check stays cheap at 15M observations); [`graph_digest`]
/// covers the full data identity separately.
fn probe_queries() -> Vec<String> {
    let ns = "http://data.example.org/eurostat/";
    let qb = "http://purl.org/linked-data/cube#Observation";
    let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    vec![
        // distinct destination countries (COUNT DISTINCT probe shape)
        format!(
            "SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE {{ ?o <{rdf_type}> <{qb}> . ?o <{ns}geo> ?m }}"
        ),
        // distinct origin members, listed (DISTINCT probe shape)
        format!("SELECT DISTINCT ?m WHERE {{ ?o <{rdf_type}> <{qb}> . ?o <{ns}citizen> ?m }}"),
        // hierarchy roll-up: regions per destination country
        format!("SELECT DISTINCT ?r WHERE {{ ?c <{ns}inRegion> ?r }}"),
    ]
}

/// The probe workload's answers on one endpoint; `None` marks a parse or
/// evaluation failure (which can never compare identical).
fn probe_answers(endpoint: &LocalEndpoint) -> Vec<Option<Solutions>> {
    probe_queries()
        .iter()
        .map(|text| {
            parse_query(text)
                .ok()
                .and_then(|q| endpoint.select(&q).ok())
        })
        .collect()
}

/// Runs the ladder. `rungs` are observation counts, ascending;
/// `snapshot_dir` is the persistent cache directory (snapshots are
/// overwritten each run so the measured load always reads bytes this
/// binary just wrote).
pub fn run(rungs: &[usize], seed: u64, snapshot_dir: &Path) -> ScaleReport {
    let mut rows = Vec::new();
    for &observations in rungs {
        eprintln!("scale rung: generating eurostat at {observations} observations …");
        let start = Instant::now();
        let mut dataset = re2x_datagen::eurostat::generate(observations, seed);
        let generate = start.elapsed();
        let digest = graph_digest(&dataset.graph);
        let triples = dataset.graph.len();

        let key = cache::snapshot_key("eurostat", observations, seed);
        let path = cache::snapshot_path(snapshot_dir, "eurostat", observations, seed);
        let _ = std::fs::create_dir_all(snapshot_dir);
        let start = Instant::now();
        let wrote = dataset.graph.write_snapshot(&path, &key).is_ok();
        let write = start.elapsed();

        // Answer the probe workload on the generated graph, then drop it
        // *before* timing the load: keeping millions of live allocations
        // around while the loader populates its own inflates the measured
        // load severalfold through allocator pressure, and no real run
        // holds a second copy of the dataset while loading a snapshot.
        let generated_endpoint = LocalEndpoint::new(std::mem::take(&mut dataset.graph));
        let expected_answers = probe_answers(&generated_endpoint);
        drop(generated_endpoint);
        drop(dataset);

        eprintln!("scale rung: loading snapshot back …");
        let start = Instant::now();
        let acquired = cache::load_or_generate(snapshot_dir, "eurostat", observations, seed);
        let load = start.elapsed();
        let (mut loaded, cache_hit) = match acquired {
            Some((ds, outcome)) => (ds, wrote && outcome.is_hit()),
            None => (re2x_datagen::eurostat::describe(observations), false),
        };

        let loaded_graph = std::mem::take(&mut loaded.graph);
        let digest_ok = graph_digest(&loaded_graph) == digest;
        let loaded_endpoint = LocalEndpoint::new(loaded_graph);
        let identical = digest_ok
            && probe_answers(&loaded_endpoint)
                .iter()
                .zip(&expected_answers)
                .all(|(got, want)| want.is_some() && got == want);

        eprintln!("scale rung: bootstrapping schema from the loaded graph …");
        let config = BootstrapConfig::new(loaded.observation_class.clone());
        let start = Instant::now();
        let report = bootstrap(&loaded_endpoint, &config);
        let bootstrap_time = start.elapsed();
        let members = report
            .as_ref()
            .map(|r| r.schema.stats().members)
            .unwrap_or_default();

        // One ReOLAP synthesis, end-to-end from the snapshot-loaded graph.
        // Min of three runs: the synthesis is schema-bound (microseconds to
        // milliseconds), so a single sample is mostly scheduler noise.
        let reolap_time = match &report {
            Ok(report) => {
                let refs = ["Germany", "Syria"];
                let cfg = ReolapConfig::default();
                (0..3)
                    .map(|_| {
                        let start = Instant::now();
                        let _ = reolap(&loaded_endpoint, &report.schema, &refs, &cfg);
                        start.elapsed()
                    })
                    .min()
                    .unwrap_or(Duration::ZERO)
            }
            Err(_) => Duration::ZERO,
        };

        rows.push(ScaleRung {
            observations,
            triples,
            generate,
            write,
            load,
            cache_hit,
            identical: identical && report.is_ok(),
            bootstrap: bootstrap_time,
            members,
            reolap: reolap_time,
        });
    }
    ScaleReport { seed, rows }
}
