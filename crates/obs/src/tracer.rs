//! The span-based tracer: RAII span guards, per-thread nesting, wall- and
//! self-time accounting, query provenance, and a thread-safe collector.
//!
//! ## Span model
//!
//! A [`Tracer`] hands out [`SpanGuard`]s from [`Tracer::span`]; dropping
//! the guard closes the span. Spans nest **per thread**: each thread keeps
//! its own stack, so a span opened on a crawler worker thread nests under
//! whatever that worker opened, never under another thread's spans. Work
//! fanned out to scoped threads links back to its logical parent with
//! [`Tracer::span_under`], which composes the parent's *path* without
//! folding the child's wall time into the parent's self time (concurrent
//! children overlap, so subtracting them would go negative).
//!
//! A span's **path** is the `/`-joined chain of span names from its root
//! (`"pipeline/bootstrap/bootstrap.crawl_dimension"`). The path is what
//! query provenance attributes costs to.
//!
//! ## Cost accounting
//!
//! * **wall time** — guard creation to guard drop,
//! * **self time** — wall time minus the wall time of same-thread child
//!   spans (cross-thread children are excluded by construction),
//! * **query provenance** — [`Tracer::record_query`] attributes a SPARQL
//!   query (and [`Tracer::record_cache`] a cache hit/miss) to the
//!   innermost span open on the calling thread.
//!
//! ## Disabled fast path
//!
//! [`Tracer::disabled`] (the `Default`) carries no collector at all:
//! `span()` returns an inert guard and every `record_*` call returns
//! immediately — no allocation, no lock, no thread-local access. The
//! micro-bench `crates/bench/benches/obs_overhead.rs` pins this with a
//! counting global allocator.

// lint:allow-file(no-wallclock, the tracer IS the timing layer: spans and events measure real wall time)

use crate::bus::{BusEvent, EventBus, EventStream, DEFAULT_SUBSCRIBER_CAPACITY};
use crate::hist::LatencyHistogram;
use crate::metrics::Metrics;
use crate::sync::lock_or_recover;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Provenance bucket for queries issued outside any open span.
pub const UNATTRIBUTED: &str = "(unattributed)";

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small sequential per-thread id (stable within the process) used in
    /// trace events instead of the opaque `std::thread::ThreadId`.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Per-thread span stacks, one per tracer that has an open span on
    /// this thread (normally zero or one).
    static STACKS: RefCell<Vec<TracerStack>> = const { RefCell::new(Vec::new()) };
}

struct TracerStack {
    tracer: u64,
    frames: Vec<Frame>,
}

struct Frame {
    span: u64,
    path: String,
    start: Instant,
    /// Accumulated wall time of already-closed same-thread children.
    child: Duration,
}

fn current_thread() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Index of the calling thread's stack for `tracer`, creating it when
/// this is the tracer's first frame on the thread. The returned index is
/// always in bounds: either `position` found it or `push` just added it.
fn stack_slot(stacks: &mut Vec<TracerStack>, tracer: u64) -> usize {
    match stacks.iter().position(|s| s.tracer == tracer) {
        Some(i) => i,
        None => {
            stacks.push(TracerStack {
                tracer,
                frames: Vec::new(),
            });
            stacks.len() - 1
        }
    }
}

/// Kind of endpoint call attributed by query provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A `SELECT` query.
    Select,
    /// An `ASK` query.
    Ask,
    /// A full-text keyword lookup.
    Keyword,
}

impl QueryKind {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Select => "select",
            QueryKind::Ask => "ask",
            QueryKind::Keyword => "keyword",
        }
    }
}

/// Per-span-path query statistics: which phase issued how many queries of
/// which kind, how much endpoint time they cost, and how the latency was
/// distributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseQueryStats {
    /// `SELECT` queries attributed to this path.
    pub selects: u64,
    /// `ASK` queries attributed to this path.
    pub asks: u64,
    /// Keyword searches attributed to this path.
    pub keyword_searches: u64,
    /// Total endpoint time of the attributed queries.
    pub busy: Duration,
    /// Latency distribution of the attributed queries.
    pub latency: LatencyHistogram,
    /// Cache hits observed while this path was the innermost span.
    pub cache_hits: u64,
    /// Cache misses observed while this path was the innermost span.
    pub cache_misses: u64,
}

impl PhaseQueryStats {
    /// Total queries of all kinds attributed to this path.
    pub fn queries(&self) -> u64 {
        self.selects + self.asks + self.keyword_searches
    }

    /// Folds `other` into `self` (used to roll paths up into phases).
    pub fn merge(&mut self, other: &PhaseQueryStats) {
        self.selects += other.selects;
        self.asks += other.asks;
        self.keyword_searches += other.keyword_searches;
        self.busy += other.busy;
        self.latency.merge(&other.latency);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// One entry of the trace event log. All timestamps (`at`) are offsets
/// from the tracer's construction instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span was opened.
    Enter {
        /// Process-unique span id.
        span: u64,
        /// Id of the parent span (same-thread enclosing span, or the
        /// explicit parent given to [`Tracer::span_under`]).
        parent: Option<u64>,
        /// Full `/`-joined path of the span.
        path: String,
        /// The span's own name (last path segment).
        name: String,
        /// Sequential id of the opening thread.
        thread: u64,
        /// Offset from tracer construction.
        at: Duration,
        /// Key/value annotations given at creation.
        fields: Vec<(String, String)>,
    },
    /// A span was closed.
    Exit {
        /// Id of the span being closed.
        span: u64,
        /// Full path of the span.
        path: String,
        /// Sequential id of the closing thread.
        thread: u64,
        /// Offset from tracer construction.
        at: Duration,
        /// Creation-to-drop wall time.
        wall: Duration,
        /// Wall time minus same-thread children's wall time.
        self_time: Duration,
    },
    /// A SPARQL query (or keyword lookup) was answered.
    Query {
        /// Path of the innermost open span on the issuing thread.
        path: String,
        /// Query kind.
        kind: QueryKind,
        /// Sequential id of the issuing thread.
        thread: u64,
        /// Offset from tracer construction.
        at: Duration,
        /// Endpoint time of this query.
        latency: Duration,
    },
    /// A cache lookup resolved (hit or miss).
    Cache {
        /// Path of the innermost open span on the issuing thread.
        path: String,
        /// Whether the lookup was a hit.
        hit: bool,
        /// Sequential id of the issuing thread.
        thread: u64,
        /// Offset from tracer construction.
        at: Duration,
    },
}

struct TracerCore {
    id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    // lock-order: obs.tracer.events
    events: Mutex<Vec<TraceEvent>>,
    // lock-order: obs.tracer.provenance
    provenance: Mutex<BTreeMap<String, PhaseQueryStats>>,
    metrics: Metrics,
}

impl TracerCore {
    fn push_event(&self, event: TraceEvent) {
        // With no live subscriber the closure never runs (no clone, no
        // allocation); with one, the event fans out before it is archived.
        self.metrics
            .bus()
            .publish_with(|_| BusEvent::Trace(event.clone()));
        lock_or_recover("obs.tracer.events", &self.events).push(event);
    }

    fn now(&self) -> Duration {
        Instant::now().saturating_duration_since(self.epoch)
    }

    /// Path of the innermost span open on the calling thread, if any.
    fn current_path(&self) -> Option<String> {
        STACKS.with(|stacks| {
            stacks
                .borrow()
                .iter()
                .find(|s| s.tracer == self.id)
                .and_then(|s| s.frames.last())
                .map(|f| f.path.clone())
        })
    }
}

/// A cloneable reference to an open (or closed) span, used to parent spans
/// across threads. The handle of a disabled tracer's guard is inert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanHandle {
    id: u64,
    path: String,
}

/// The span tracer. Cheap to clone (clones share one collector); the
/// `Default` tracer is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that collects spans, events, provenance, and metrics.
    pub fn enabled() -> Tracer {
        // Trace events and metric deltas share one timebase: the tracer
        // epoch is the bus epoch.
        let bus = EventBus::new();
        Tracer {
            core: Some(Arc::new(TracerCore {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: bus.epoch(),
                next_span: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                provenance: Mutex::new(BTreeMap::new()),
                metrics: Metrics::with_bus(bus),
            })),
        }
    }

    /// A tracer whose every operation is a no-op (no allocation, no lock).
    pub fn disabled() -> Tracer {
        Tracer { core: None }
    }

    /// [`Tracer::enabled`] when the `RE2X_TRACE` environment variable is
    /// set to anything but `0`, [`Tracer::disabled`] otherwise.
    pub fn from_env() -> Tracer {
        match std::env::var_os("RE2X_TRACE") {
            Some(v) if v != "0" => Tracer::enabled(),
            _ => Tracer::disabled(),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a span nested under the calling thread's innermost open span.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_impl(name, &[], None)
    }

    /// [`Tracer::span`] with key/value annotations on the enter event.
    pub fn span_with(&self, name: &str, fields: &[(&str, &str)]) -> SpanGuard<'_> {
        self.span_impl(name, fields, None)
    }

    /// Opens a span whose logical parent is `parent` (typically on another
    /// thread). The child's path extends the parent's path, but its wall
    /// time is *not* folded into the parent's self time — concurrent
    /// children overlap.
    pub fn span_under(&self, parent: &SpanHandle, name: &str) -> SpanGuard<'_> {
        self.span_impl(name, &[], Some(parent))
    }

    /// [`Tracer::span_under`] with key/value annotations.
    pub fn span_under_with(
        &self,
        parent: &SpanHandle,
        name: &str,
        fields: &[(&str, &str)],
    ) -> SpanGuard<'_> {
        self.span_impl(name, fields, Some(parent))
    }

    fn span_impl(
        &self,
        name: &str,
        fields: &[(&str, &str)],
        explicit_parent: Option<&SpanHandle>,
    ) -> SpanGuard<'_> {
        let Some(core) = self.core.as_deref() else {
            return SpanGuard {
                core: None,
                span: 0,
                path: String::new(),
            };
        };
        let span = core.next_span.fetch_add(1, Ordering::Relaxed);
        let thread = current_thread();
        let start = Instant::now();
        let (parent, path) = STACKS.with(|stacks| {
            let mut stacks = stacks.borrow_mut();
            let idx = stack_slot(&mut stacks, core.id);
            let stack = &mut stacks[idx];
            let (parent, base) = match explicit_parent {
                Some(h) if h.id != 0 => (Some(h.id), Some(h.path.clone())),
                Some(_) => (None, None),
                None => {
                    let top = stack.frames.last();
                    (top.map(|f| f.span), top.map(|f| f.path.clone()))
                }
            };
            let path = match base {
                Some(base) => format!("{base}/{name}"),
                None => name.to_owned(),
            };
            stack.frames.push(Frame {
                span,
                path: path.clone(),
                start,
                child: Duration::ZERO,
            });
            (parent, path)
        });
        core.push_event(TraceEvent::Enter {
            span,
            parent,
            path: path.clone(),
            name: name.to_owned(),
            thread,
            at: start.saturating_duration_since(core.epoch),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        });
        SpanGuard {
            core: Some(core),
            span,
            path,
        }
    }

    /// Path of the innermost span open on the calling thread, if any.
    pub fn current_path(&self) -> Option<String> {
        self.core.as_deref().and_then(TracerCore::current_path)
    }

    /// Handle of the innermost span open on the calling thread, if any.
    /// Combined with [`Tracer::adopt`] this lets work submitted to another
    /// thread carry its submitter's span context along.
    pub fn current_handle(&self) -> Option<SpanHandle> {
        let core = self.core.as_deref()?;
        STACKS.with(|stacks| {
            stacks
                .borrow()
                .iter()
                .find(|s| s.tracer == core.id)
                .and_then(|s| s.frames.last())
                .map(|f| SpanHandle {
                    id: f.span,
                    path: f.path.clone(),
                })
        })
    }

    /// Re-opens an existing span's *context* on the calling thread: while
    /// the returned guard lives, `record_query`/`record_cache` on this
    /// thread attribute to the handle's path, and new spans nest under it.
    ///
    /// Unlike [`Tracer::span_under`] this creates **no new span**: no
    /// Enter/Exit events are emitted and no wall time is accounted
    /// anywhere — the adopted frame is pure attribution context. The async
    /// endpoint adapter uses this so queries serviced on pool threads
    /// reconcile to the same provenance paths as their serial equivalents.
    /// Inert for disabled tracers and default (inert) handles.
    pub fn adopt(&self, handle: &SpanHandle) -> AdoptGuard<'_> {
        let Some(core) = self.core.as_deref() else {
            return AdoptGuard {
                core: None,
                span: 0,
            };
        };
        if handle.id == 0 {
            return AdoptGuard {
                core: None,
                span: 0,
            };
        }
        STACKS.with(|stacks| {
            let mut stacks = stacks.borrow_mut();
            let idx = stack_slot(&mut stacks, core.id);
            stacks[idx].frames.push(Frame {
                span: handle.id,
                path: handle.path.clone(),
                start: Instant::now(),
                child: Duration::ZERO,
            });
        });
        AdoptGuard {
            core: Some(core),
            span: handle.id,
        }
    }

    /// Attributes one endpoint query to the innermost open span on the
    /// calling thread (or to [`UNATTRIBUTED`]). No-op when disabled.
    pub fn record_query(&self, kind: QueryKind, latency: Duration) {
        let Some(core) = self.core.as_deref() else {
            return;
        };
        let path = core
            .current_path()
            .unwrap_or_else(|| UNATTRIBUTED.to_owned());
        {
            let mut prov = lock_or_recover("obs.tracer.provenance", &core.provenance);
            let stats = prov.entry(path.clone()).or_default();
            match kind {
                QueryKind::Select => stats.selects += 1,
                QueryKind::Ask => stats.asks += 1,
                QueryKind::Keyword => stats.keyword_searches += 1,
            }
            stats.busy += latency;
            stats.latency.record(latency);
        }
        let at = core.now();
        core.push_event(TraceEvent::Query {
            path,
            kind,
            thread: current_thread(),
            at,
            latency,
        });
    }

    /// Attributes one cache hit (or miss) to the innermost open span on the
    /// calling thread. No-op when disabled.
    pub fn record_cache(&self, hit: bool) {
        let Some(core) = self.core.as_deref() else {
            return;
        };
        let path = core
            .current_path()
            .unwrap_or_else(|| UNATTRIBUTED.to_owned());
        {
            let mut prov = lock_or_recover("obs.tracer.provenance", &core.provenance);
            let stats = prov.entry(path.clone()).or_default();
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
        }
        let at = core.now();
        core.push_event(TraceEvent::Cache {
            path,
            hit,
            thread: current_thread(),
            at,
        });
    }

    /// The metrics registry, if enabled. Instrumentation sites that only
    /// bump counters can use [`Tracer::counter_add`] instead.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.core.as_deref().map(|c| &c.metrics)
    }

    /// The tracer's event bus, if enabled. Trace events and every metric
    /// delta recorded through this tracer's registry fan out on it.
    pub fn bus(&self) -> Option<&EventBus> {
        self.core.as_deref().map(|c| c.metrics.bus())
    }

    /// Subscribes to the live event stream with the default ring capacity
    /// ([`DEFAULT_SUBSCRIBER_CAPACITY`]). Disabled tracers return an
    /// inert stream that yields nothing.
    pub fn subscribe(&self) -> EventStream {
        self.subscribe_with_capacity(DEFAULT_SUBSCRIBER_CAPACITY)
    }

    /// [`Tracer::subscribe`] with an explicit bounded ring capacity; when
    /// the subscriber falls behind, the oldest events are dropped and
    /// counted in [`EventStream::dropped_events`].
    pub fn subscribe_with_capacity(&self, capacity: usize) -> EventStream {
        match self.core.as_deref() {
            Some(core) => core.metrics.bus().subscribe(capacity),
            None => EventStream::inert(),
        }
    }

    /// Adds to a named counter in the tracer's metrics registry. No-op
    /// when disabled.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(core) = self.core.as_deref() {
            core.metrics.counter_add(name, delta);
        }
    }

    /// Sets a named gauge in the tracer's metrics registry. No-op when
    /// disabled.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(core) = self.core.as_deref() {
            core.metrics.gauge_set(name, value);
        }
    }

    /// Records a latency observation in the tracer's metrics registry.
    /// No-op when disabled.
    pub fn observe(&self, name: &str, latency: Duration) {
        if let Some(core) = self.core.as_deref() {
            core.metrics.observe(name, latency);
        }
    }

    /// Copy of the event log in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.core
            .as_deref()
            .map(|c| lock_or_recover("obs.tracer.events", &c.events).clone())
            .unwrap_or_default()
    }

    /// Drains the event log (for long-running processes that export
    /// incrementally).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.core
            .as_deref()
            .map(|c| std::mem::take(&mut *lock_or_recover("obs.tracer.events", &c.events)))
            .unwrap_or_default()
    }

    /// Snapshot of the query-provenance table, sorted by span path.
    pub fn provenance(&self) -> Vec<(String, PhaseQueryStats)> {
        self.core
            .as_deref()
            .map(|c| {
                lock_or_recover("obs.tracer.provenance", &c.provenance)
                    .iter()
                    .map(|(k, &v)| (k.clone(), v))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// RAII guard for an open span; dropping it closes the span. Created by
/// [`Tracer::span`] and friends.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    core: Option<&'a TracerCore>,
    span: u64,
    path: String,
}

impl SpanGuard<'_> {
    /// A cloneable handle for parenting spans on other threads. Inert for
    /// disabled tracers.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            id: self.span,
            path: self.path.clone(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(core) = self.core else {
            return;
        };
        let end = Instant::now();
        let popped = STACKS.with(|stacks| {
            let mut stacks = stacks.borrow_mut();
            let pos = stacks.iter().position(|s| s.tracer == core.id)?;
            let stack = &mut stacks[pos];
            // Normally ours is the top frame; tolerate out-of-order drops
            // (e.g. a guard stored past its siblings) by searching.
            let idx = stack.frames.iter().rposition(|f| f.span == self.span)?;
            let frame = stack.frames.remove(idx);
            let wall = end.saturating_duration_since(frame.start);
            if let Some(parent) = stack.frames.last_mut() {
                parent.child += wall;
            }
            if stack.frames.is_empty() {
                stacks.swap_remove(pos);
            }
            Some((frame, wall))
        });
        // A guard moved to (and dropped on) a different thread finds no
        // frame; the span then simply records no exit.
        if let Some((frame, wall)) = popped {
            let self_time = wall.saturating_sub(frame.child);
            core.push_event(TraceEvent::Exit {
                span: self.span,
                path: frame.path,
                thread: current_thread(),
                at: end.saturating_duration_since(core.epoch),
                wall,
                self_time,
            });
        }
    }
}

/// RAII guard for an adopted span context (see [`Tracer::adopt`]);
/// dropping it restores the thread's previous attribution context. Emits
/// no events and accounts no time.
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct AdoptGuard<'a> {
    core: Option<&'a TracerCore>,
    span: u64,
}

impl Drop for AdoptGuard<'_> {
    fn drop(&mut self) {
        let Some(core) = self.core else {
            return;
        };
        STACKS.with(|stacks| {
            let mut stacks = stacks.borrow_mut();
            let Some(pos) = stacks.iter().position(|s| s.tracer == core.id) else {
                return;
            };
            let stack = &mut stacks[pos];
            if let Some(idx) = stack.frames.iter().rposition(|f| f.span == self.span) {
                // Adopted frames are context only: the removed frame's wall
                // time is discarded, not credited to an enclosing frame.
                stack.frames.remove(idx);
            }
            if stack.frames.is_empty() {
                stacks.swap_remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exits(events: &[TraceEvent]) -> Vec<&TraceEvent> {
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Exit { .. }))
            .collect()
    }

    #[test]
    fn spans_nest_and_compose_paths() {
        let tracer = Tracer::enabled();
        {
            let _a = tracer.span("a");
            assert_eq!(tracer.current_path().as_deref(), Some("a"));
            {
                let _b = tracer.span("b");
                assert_eq!(tracer.current_path().as_deref(), Some("a/b"));
            }
            assert_eq!(tracer.current_path().as_deref(), Some("a"));
        }
        assert_eq!(tracer.current_path(), None);
        let events = tracer.events();
        assert_eq!(events.len(), 4, "two enters, two exits");
        match &events[1] {
            TraceEvent::Enter {
                path, parent, name, ..
            } => {
                assert_eq!(path, "a/b");
                assert_eq!(name, "b");
                assert!(parent.is_some());
            }
            other => panic!("expected enter, got {other:?}"),
        }
    }

    #[test]
    fn self_time_excludes_children_and_stays_below_wall() {
        let tracer = Tracer::enabled();
        {
            let _outer = tracer.span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = tracer.span("inner");
                std::thread::sleep(Duration::from_millis(4));
            }
        }
        let events = tracer.events();
        for e in exits(&events) {
            if let TraceEvent::Exit {
                path,
                wall,
                self_time,
                ..
            } = e
            {
                assert!(
                    self_time <= wall,
                    "{path}: self {self_time:?} > wall {wall:?}"
                );
                if path == "outer" {
                    assert!(
                        *self_time < *wall,
                        "outer self time must exclude inner's 4 ms"
                    );
                    assert!(*wall >= Duration::from_millis(6));
                    assert!(*self_time < Duration::from_millis(5));
                }
            }
        }
    }

    #[test]
    fn cross_thread_children_extend_the_parent_path() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.span("root");
            let handle = root.handle();
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let handle = handle.clone();
                    let tracer = &tracer;
                    scope.spawn(move || {
                        let _child = tracer.span_under(&handle, "worker");
                        std::thread::sleep(Duration::from_millis(1));
                    });
                }
            });
        }
        let events = tracer.events();
        let worker_exits: Vec<_> = exits(&events)
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::Exit { path, .. } if path == "root/worker"))
            .collect();
        assert_eq!(worker_exits.len(), 3);
        // concurrent children must not drive the parent's self time negative
        // (saturating) nor be subtracted at all: root keeps its full wall
        for e in exits(&events) {
            if let TraceEvent::Exit {
                path,
                wall,
                self_time,
                ..
            } = e
            {
                if path == "root" {
                    assert_eq!(
                        wall, self_time,
                        "cross-thread children don't count as root's child time"
                    );
                }
            }
        }
    }

    #[test]
    fn adopt_attributes_queries_without_emitting_spans() {
        let tracer = Tracer::enabled();
        {
            let root = tracer.span("submit");
            let handle = tracer.current_handle().expect("span open");
            assert_eq!(handle, root.handle());
            std::thread::scope(|scope| {
                let tracer = &tracer;
                let handle = handle.clone();
                scope.spawn(move || {
                    assert_eq!(tracer.current_path(), None, "fresh worker thread");
                    {
                        let _ctx = tracer.adopt(&handle);
                        assert_eq!(tracer.current_path().as_deref(), Some("submit"));
                        tracer.record_query(QueryKind::Ask, Duration::from_micros(3));
                        // real spans still nest under the adopted context
                        let _inner = tracer.span("inner");
                        tracer.record_query(QueryKind::Select, Duration::from_micros(2));
                    }
                    assert_eq!(tracer.current_path(), None, "context restored");
                });
            });
        }
        let prov = tracer.provenance();
        let by_path: BTreeMap<&str, &PhaseQueryStats> =
            prov.iter().map(|(k, v)| (k.as_str(), v)).collect();
        assert_eq!(by_path["submit"].asks, 1, "worker query adopted the path");
        assert_eq!(by_path["submit/inner"].selects, 1);
        assert!(!by_path.contains_key(UNATTRIBUTED));
        // adoption is invisible in the event log: one enter/exit pair for
        // "submit", one for "submit/inner", plus the two query events
        let events = tracer.events();
        let enters = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Enter { .. }))
            .count();
        assert_eq!(enters, 2, "adopt emits no Enter events");
    }

    #[test]
    fn adopt_is_inert_for_disabled_tracers_and_default_handles() {
        let disabled = Tracer::disabled();
        assert_eq!(disabled.current_handle(), None);
        drop(disabled.adopt(&SpanHandle::default()));

        let tracer = Tracer::enabled();
        assert_eq!(tracer.current_handle(), None, "no span open");
        {
            let _ctx = tracer.adopt(&SpanHandle::default());
            assert_eq!(tracer.current_path(), None, "inert handle adopts nothing");
        }
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn every_exit_matches_an_enter() {
        let tracer = Tracer::enabled();
        {
            let _a = tracer.span("a");
            let _b = tracer.span("b");
        }
        let events = tracer.events();
        let mut open: Vec<u64> = Vec::new();
        for e in &events {
            match e {
                TraceEvent::Enter { span, .. } => open.push(*span),
                TraceEvent::Exit { span, .. } => {
                    let last = open.pop().expect("exit without open span");
                    assert_eq!(last, *span, "exits must be LIFO per thread");
                }
                TraceEvent::Query { .. } | TraceEvent::Cache { .. } => {}
            }
        }
        assert!(open.is_empty(), "all spans closed");
    }

    #[test]
    fn queries_are_attributed_to_the_innermost_span() {
        let tracer = Tracer::enabled();
        tracer.record_query(QueryKind::Select, Duration::from_micros(5));
        {
            let _a = tracer.span("phase_a");
            tracer.record_query(QueryKind::Select, Duration::from_micros(10));
            tracer.record_query(QueryKind::Ask, Duration::from_micros(10));
            {
                let _b = tracer.span("inner");
                tracer.record_query(QueryKind::Keyword, Duration::from_micros(20));
            }
        }
        let prov = tracer.provenance();
        let by_path: BTreeMap<&str, &PhaseQueryStats> =
            prov.iter().map(|(k, v)| (k.as_str(), v)).collect();
        assert_eq!(by_path[UNATTRIBUTED].selects, 1);
        assert_eq!(by_path["phase_a"].selects, 1);
        assert_eq!(by_path["phase_a"].asks, 1);
        assert_eq!(by_path["phase_a"].busy, Duration::from_micros(20));
        assert_eq!(by_path["phase_a/inner"].keyword_searches, 1);
        let total: u64 = prov.iter().map(|(_, s)| s.queries()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn cache_events_are_attributed_per_phase() {
        let tracer = Tracer::enabled();
        {
            let _a = tracer.span("phase_a");
            tracer.record_cache(false);
            tracer.record_cache(true);
            tracer.record_cache(true);
        }
        let prov = tracer.provenance();
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].1.cache_hits, 2);
        assert_eq!(prov[0].1.cache_misses, 1);
        assert_eq!(prov[0].1.queries(), 0, "cache events are not queries");
        // cache lookups also land in the event log for live consumers
        let hits = tracer
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Cache { hit: true, .. }))
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn subscribers_see_spans_queries_and_metric_deltas_live() {
        let tracer = Tracer::enabled();
        let stream = tracer.subscribe();
        {
            let _a = tracer.span("phase_a");
            tracer.record_query(QueryKind::Select, Duration::from_micros(7));
            tracer.record_cache(true);
            tracer.counter_add("c", 3);
        }
        let events = stream.poll();
        assert!(events
            .iter()
            .any(|e| matches!(e, crate::bus::BusEvent::Trace(TraceEvent::Enter { .. }))));
        assert!(events
            .iter()
            .any(|e| matches!(e, crate::bus::BusEvent::Trace(TraceEvent::Query { .. }))));
        assert!(events.iter().any(|e| matches!(
            e,
            crate::bus::BusEvent::Trace(TraceEvent::Cache { hit: true, .. })
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, crate::bus::BusEvent::Trace(TraceEvent::Exit { .. }))));
        assert!(events.iter().any(
            |e| matches!(e, crate::bus::BusEvent::Counter { name, delta: 3, .. } if name == "c")
        ));
        assert_eq!(stream.dropped_events(), 0);
        // the archived log is unaffected by live subscription
        assert_eq!(tracer.events().len(), 4, "enter, query, cache, exit");
    }

    #[test]
    fn disabled_tracer_subscription_is_inert() {
        let tracer = Tracer::disabled();
        assert!(tracer.bus().is_none());
        let stream = tracer.subscribe();
        assert!(!stream.is_live());
        drop(tracer.span("a"));
        assert!(stream.poll().is_empty());
    }

    #[test]
    fn phase_stats_merge_preserves_counts() {
        let mut a = PhaseQueryStats {
            selects: 1,
            busy: Duration::from_micros(5),
            ..Default::default()
        };
        a.latency.record(Duration::from_micros(5));
        let mut b = PhaseQueryStats {
            asks: 2,
            cache_hits: 3,
            busy: Duration::from_micros(7),
            ..Default::default()
        };
        b.latency.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.queries(), 3);
        assert_eq!(a.busy, Duration::from_micros(12));
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.cache_hits, 3);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let guard = tracer.span("a");
            assert_eq!(guard.handle(), SpanHandle::default());
            tracer.record_query(QueryKind::Select, Duration::from_micros(1));
            tracer.record_cache(true);
            tracer.counter_add("c", 1);
            assert_eq!(tracer.current_path(), None);
        }
        assert!(tracer.events().is_empty());
        assert!(tracer.provenance().is_empty());
        assert!(tracer.metrics().is_none());
    }

    #[test]
    fn clones_share_the_collector() {
        let tracer = Tracer::enabled();
        let clone = tracer.clone();
        {
            let _a = clone.span("a");
            tracer.record_query(QueryKind::Select, Duration::ZERO);
        }
        assert_eq!(tracer.events().len(), 3);
        assert_eq!(clone.provenance().len(), 1);
        assert_eq!(clone.provenance()[0].0, "a");
    }

    #[test]
    fn take_events_drains() {
        let tracer = Tracer::enabled();
        drop(tracer.span("a"));
        assert_eq!(tracer.take_events().len(), 2);
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn concurrent_tracing_is_consistent() {
        let tracer = Tracer::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = &tracer;
                scope.spawn(move || {
                    for _ in 0..25 {
                        let _s = tracer.span("work");
                        tracer.record_query(QueryKind::Select, Duration::from_micros(1));
                    }
                });
            }
        });
        let events = tracer.events();
        let enters = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Enter { .. }))
            .count();
        let exits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Exit { .. }))
            .count();
        assert_eq!(enters, 100);
        assert_eq!(exits, 100);
        let total: u64 = tracer.provenance().iter().map(|(_, s)| s.queries()).sum();
        assert_eq!(total, 100);
    }
}
