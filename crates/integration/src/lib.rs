//! Hosts the workspace-level integration tests and examples.
