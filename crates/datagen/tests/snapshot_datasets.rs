//! Round-trip suite over the bundled dataset generators: for every
//! generator, `load_or_generate` must (1) generate and persist on a cold
//! cache, (2) serve a byte-identical graph from the snapshot on the next
//! call, and (3) regenerate — not trust — artifacts stamped for a
//! different dataset.

use re2x_datagen::cache::{self, CacheMiss, CacheOutcome};
use re2x_rdf::graph_digest;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("re2x-dataset-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_generator_round_trips_through_the_cache() {
    let dir = scratch_dir("roundtrip");
    for (name, obs) in [
        ("eurostat", 300),
        ("production", 200),
        ("dbpedia", 150),
        ("running-example", 0),
    ] {
        let (generated, outcome) =
            cache::load_or_generate(&dir, name, obs, 99).expect("known dataset");
        assert!(
            matches!(
                outcome,
                CacheOutcome::Generated {
                    miss: CacheMiss::Absent,
                    wrote: true
                }
            ),
            "{name}: cold cache must generate and persist, got {outcome:?}"
        );

        let (loaded, outcome) =
            cache::load_or_generate(&dir, name, obs, 99).expect("known dataset");
        assert!(
            outcome.is_hit(),
            "{name}: warm cache must load, got {outcome:?}"
        );

        // Full content identity: same terms in the same interning order,
        // same triples — ids are interchangeable between the two graphs.
        assert_eq!(
            generated.graph.len(),
            loaded.graph.len(),
            "{name}: triple count"
        );
        assert_eq!(
            graph_digest(&generated.graph),
            graph_digest(&loaded.graph),
            "{name}: digest"
        );
        // Metadata comes from `describe`, which must agree with the
        // generator it stands in for.
        assert_eq!(
            generated.observation_class, loaded.observation_class,
            "{name}"
        );
        assert_eq!(
            generated.dimension_predicates, loaded.dimension_predicates,
            "{name}"
        );
        assert_eq!(
            generated.rollup_predicates, loaded.rollup_predicates,
            "{name}"
        );
        assert_eq!(generated.expected, loaded.expected, "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_artifact_is_regenerated_not_trusted() {
    let dir = scratch_dir("stale");
    // Persist a snapshot for seed 1, then overwrite it onto the cache path
    // of seed 2: a structurally valid file holding the wrong dataset.
    let (_, outcome) = cache::load_or_generate(&dir, "eurostat", 120, 1).expect("known dataset");
    assert!(matches!(outcome, CacheOutcome::Generated { .. }));
    std::fs::copy(
        cache::snapshot_path(&dir, "eurostat", 120, 1),
        cache::snapshot_path(&dir, "eurostat", 120, 2),
    )
    .expect("plant stale artifact");

    let (dataset, outcome) =
        cache::load_or_generate(&dir, "eurostat", 120, 2).expect("known dataset");
    match outcome {
        CacheOutcome::Generated {
            miss: CacheMiss::Stale { expected, found },
            wrote,
        } => {
            assert_eq!(expected, cache::snapshot_key("eurostat", 120, 1 + 1));
            assert_eq!(found, cache::snapshot_key("eurostat", 120, 1));
            assert!(wrote, "regenerated snapshot must replace the stale one");
        }
        other => panic!("stale artifact must force regeneration, got {other:?}"),
    }
    // The regenerated dataset is the seed-2 one, proven by its own digest.
    let fresh = re2x_datagen::eurostat::generate(120, 2);
    assert_eq!(graph_digest(&dataset.graph), graph_digest(&fresh.graph));

    // And the replacement artifact now serves seed 2 from cache.
    let (_, outcome) = cache::load_or_generate(&dir, "eurostat", 120, 2).expect("known dataset");
    assert!(outcome.is_hit());
    let _ = std::fs::remove_dir_all(&dir);
}
