//! `forbid-unsafe`: every crate root must carry `#![forbid(unsafe_code)]`.
//!
//! The workspace is pure safe Rust; making the compiler enforce that at
//! every root means a future `unsafe` block is a deliberate, reviewed
//! decision (the attribute must be removed first) rather than a drive-by.

use super::significant;
use crate::findings::Finding;
use crate::source::SourceFile;

/// Checks one crate root (the engine calls this for `src/lib.rs` only;
/// binaries inherit the guarantee through the library they link).
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    for i in 0..toks.len() {
        // # ! [ forbid ( unsafe_code ) ]
        if toks[i].text(text) == "#"
            && toks.get(i + 1).map(|t| t.text(text)) == Some("!")
            && toks.get(i + 2).map(|t| t.text(text)) == Some("[")
            && toks.get(i + 3).map(|t| t.text(text)) == Some("forbid")
            && toks.get(i + 4).map(|t| t.text(text)) == Some("(")
            && toks.get(i + 5).map(|t| t.text(text)) == Some("unsafe_code")
            && toks.get(i + 6).map(|t| t.text(text)) == Some(")")
            && toks.get(i + 7).map(|t| t.text(text)) == Some("]")
        {
            return Vec::new();
        }
    }
    vec![Finding {
        rule: "forbid-unsafe",
        file: file.path.clone(),
        line: 1,
        snippet: "(crate root)".to_owned(),
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
    }]
}
