//! # re2x-obs — observability for the RE2X pipeline
//!
//! A zero-dependency tracing and metrics layer:
//!
//! * [`Tracer`] — span-based tracer with RAII guards ([`SpanGuard`]),
//!   per-thread nesting, wall-/self-time accounting, and explicit
//!   cross-thread parenting ([`SpanHandle`]) for scoped worker threads;
//! * query provenance — [`Tracer::record_query`] attributes every SPARQL
//!   query to the pipeline phase (innermost span path) that issued it,
//!   with per-phase counts and latency quantiles ([`PhaseQueryStats`]);
//! * [`Metrics`] — a registry of named counters, gauges, and latency
//!   histograms built on the fixed-bucket [`LatencyHistogram`] (moved
//!   here from `re2x-sparql`, which re-exports it);
//! * exporters ([`export`]) — JSONL event log, Prometheus-style text
//!   exposition, and a flamegraph-style self-time tree;
//! * [`EventBus`] — a bounded, poison-tolerant live fan-out of trace
//!   events and metric deltas ([`Tracer::subscribe`]); producers never
//!   block and pay nothing (one atomic load) while nobody listens;
//! * a JSONL parser ([`parse`]) — the exporters' inverse, so recorded
//!   logs replay offline (`repro watch`);
//! * poison-tolerant locking ([`sync`]) — [`lock_or_recover`] /
//!   [`wait_or_recover`] strip poison instead of cascading panics, and
//!   with `RE2X_LOCK_WITNESS=1` double as a runtime **lock witness**:
//!   each acquisition records the nesting edges real threads perform
//!   ([`witness_edges`]), which the `re2x-lint` witness gate checks
//!   against the static `// lock-order:` registry.
//!
//! The crate is a dependency *leaf*: every layer of the workspace,
//! including `re2x-sparql` at the bottom of the stack, can depend on it
//! without cycles. A disabled tracer ([`Tracer::disabled`], the default)
//! costs nothing — no allocation, no locking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod parse;
pub mod sync;
pub mod tracer;

pub use bus::{BusEvent, EventBus, EventStream, DEFAULT_SUBSCRIBER_CAPACITY};
pub use export::{
    aggregate_spans, bus_event_to_json, bus_events_to_jsonl, event_to_json, events_to_jsonl,
    fmt_duration, json_escape, prom_escape, prometheus_exposition, render_self_time_tree,
    render_self_time_tree_from, SpanAgg,
};
pub use hist::LatencyHistogram;
pub use metrics::{label, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use parse::{
    parse_bus_event, parse_bus_events, parse_trace_event, parse_trace_events, ParseError,
};
pub use sync::{
    lock_or_recover, wait_or_recover, witness_edges, witness_enable_for_tests, witness_enabled,
    witness_reset, ObservedEdge, WitnessGuard,
};
pub use tracer::{
    AdoptGuard, PhaseQueryStats, QueryKind, SpanGuard, SpanHandle, TraceEvent, Tracer, UNATTRIBUTED,
};
