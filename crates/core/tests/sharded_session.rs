//! End-to-end wiring test: a full interactive session (synthesize → choose
//! → refine) driven over the production decorator stack with a
//! [`ShardedEndpoint`] at the bottom must behave exactly like the same
//! session over a plain [`LocalEndpoint`] — same synthesized queries, same
//! results (compared under the canonical order, since a scatter-gather
//! merge is free to emit ORDER-BY-less rows in any order), and per-shard
//! metrics visible in the Prometheus exposition.

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_obs::{prometheus_exposition, Metrics};
use re2x_sparql::{
    canonical_order, CachingEndpoint, LocalEndpoint, ShardedEndpoint, Solutions, SparqlEndpoint,
    TracingEndpoint,
};
use re2xolap::{RefineOp, Session, SessionConfig};
use std::sync::Arc;

fn canonicalized(mut solutions: Solutions, graph: &re2x_rdf::Graph) -> Solutions {
    canonical_order(&mut solutions, &[], graph);
    solutions
}

#[test]
fn session_over_sharded_stack_matches_local() {
    let dataset = re2x_datagen::running::generate();
    let metrics = Arc::new(Metrics::new());

    let local = LocalEndpoint::new(dataset.graph.clone());
    let stack = CachingEndpoint::new(TracingEndpoint::new(
        ShardedEndpoint::with_observation_class(
            dataset.graph.clone(),
            &dataset.observation_class,
            4,
        )
        .with_metrics(Arc::clone(&metrics)),
        re2x_obs::Tracer::disabled(),
    ));

    let config = BootstrapConfig::new(&dataset.observation_class);
    let schema_local = bootstrap(&local, &config).expect("local bootstrap").schema;
    let schema_sharded = bootstrap(&stack, &config)
        .expect("sharded bootstrap")
        .schema;
    assert_eq!(schema_sharded, schema_local);

    let mut session_local = Session::new(&local, &schema_local, SessionConfig::default());
    let mut session_sharded = Session::new(&stack, &schema_sharded, SessionConfig::default());

    // Synthesis resolves keywords and probes candidate interpretations;
    // both sessions must offer the same candidate queries in the same order.
    let out_local = session_local
        .synthesize(&["Germany", "2014"])
        .expect("local synthesis");
    let out_sharded = session_sharded
        .synthesize(&["Germany", "2014"])
        .expect("sharded synthesis");
    let sparql_of =
        |qs: &[re2xolap::OlapQuery]| -> Vec<String> { qs.iter().map(|q| q.sparql()).collect() };
    assert_eq!(
        sparql_of(&out_sharded.queries),
        sparql_of(&out_local.queries)
    );
    assert!(!out_local.queries.is_empty());

    // Execute every candidate on both sessions; identical rows.
    for (ql, qs) in out_local.queries.iter().zip(&out_sharded.queries) {
        let step_local = session_local.choose(ql.clone()).expect("local run");
        let rows_local = canonicalized(step_local.solutions.clone(), local.graph());
        let step_sharded = session_sharded.choose(qs.clone()).expect("sharded run");
        let rows_sharded = canonicalized(step_sharded.solutions.clone(), stack.graph());
        assert_eq!(rows_sharded, rows_local, "candidate {}", ql.sparql());
    }

    // One refinement round: same refinements offered, same refined results.
    for op in [RefineOp::Disaggregate, RefineOp::TopK] {
        let refs_local = session_local.refinements(op).expect("local refinements");
        let refs_sharded = session_sharded
            .refinements(op)
            .expect("sharded refinements");
        let sparql_local: Vec<String> = refs_local.iter().map(|r| r.query.sparql()).collect();
        let sparql_sharded: Vec<String> = refs_sharded.iter().map(|r| r.query.sparql()).collect();
        assert_eq!(sparql_sharded, sparql_local, "{op:?}");
        if let (Some(rl), Some(rs)) = (refs_local.first(), refs_sharded.first()) {
            let (rl, rs) = (rl.clone(), rs.clone());
            let step_local = session_local.apply(rl).expect("local apply");
            let rows_local = canonicalized(step_local.solutions.clone(), local.graph());
            let step_sharded = session_sharded.apply(rs).expect("sharded apply");
            let rows_sharded = canonicalized(step_sharded.solutions.clone(), stack.graph());
            assert_eq!(rows_sharded, rows_local, "{op:?}");
            session_local.backtrack();
            session_sharded.backtrack();
        }
    }

    // The whole exploration surfaced per-shard activity in the exposition.
    let exposition = prometheus_exposition(&metrics.snapshot(), &[]);
    for needle in [
        "shard_busy{shard=\"0\"}",
        "shard_busy{shard=\"3\"}",
        "shard_skew",
    ] {
        assert!(
            exposition.contains(needle),
            "missing {needle} in exposition:\n{exposition}"
        );
    }
}
