//! Exploring a heterogeneous, DBpedia-shaped KG: M-to-N hierarchies and
//! keyword ambiguity across dimensions.
//!
//! The DBpedia generator reproduces the paper's worst-case dataset: songs
//! carry several genres, hierarchy steps are many-to-many, and "Genre 17"
//! names a member both of the song-genre dimension and of the record
//! label's genre hierarchy. This example shows how REOLAP surfaces *all*
//! interpretations and how validation prunes the impossible ones.
//!
//! ```sh
//! cargo run --release --example dbpedia_music
//! ```

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{MatchMode, OlapQuery, RefineOp, Session, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small scale: the structure (23 levels, M-to-N) is fully present.
    let mut dataset = re2x_datagen::dbpedia::generate(3_000, 7);
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let report = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))?;
    let stats = report.schema.stats();
    println!(
        "bootstrapped the Creative-Work view: |D|={} |L|={} |H|={} |N_D|={} ({:?})\n",
        stats.dimensions, stats.levels, stats.hierarchies, stats.members, report.elapsed,
    );

    // keyword ambiguity: the same label names members in two dimensions
    let hits = re2xolap::matches(&endpoint, &report.schema, "Genre 17", MatchMode::Exact)?;
    println!(
        "\"Genre 17\" resolves to {} member/level interpretations:",
        hits.len()
    );
    for hit in &hits {
        println!(
            "  {} at level {}",
            hit.binding.member_iri,
            OlapQuery::level_display(&report.schema, hit.binding.level)
        );
    }

    let mut session = Session::new(&endpoint, &report.schema, SessionConfig::default());
    let outcome = session.synthesize(&["Genre 17"])?;
    println!(
        "\n{} interpretation(s) considered, {} valid quer{} synthesized:",
        outcome.interpretations_considered,
        outcome.queries.len(),
        if outcome.queries.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    for q in &outcome.queries {
        println!("  • {}", q.description);
    }

    let step = session.choose(outcome.queries[0].clone())?;
    println!(
        "\nfirst interpretation returns {} aggregate rows (M-to-N genres make songs count into several rows)",
        step.solutions.len()
    );

    // drill down across the heterogeneous hierarchy
    let refinements = session.refinements(RefineOp::Disaggregate)?;
    println!(
        "\n{} disaggregation paths available, e.g.:",
        refinements.len()
    );
    for r in refinements.iter().take(5) {
        println!("  • {}", r.explanation);
    }
    if let Some(r) = refinements
        .into_iter()
        .find(|r| r.explanation.contains("Stylistic Origin"))
    {
        let step = session.apply(r)?;
        println!(
            "\nafter drilling into stylistic origins: {} rows; first rows:\n",
            step.solutions.len()
        );
        let mut preview = step.solutions.clone();
        preview.rows.truncate(5);
        println!("{}", preview.to_labeled_table(endpoint.graph()));
    }
    Ok(())
}
