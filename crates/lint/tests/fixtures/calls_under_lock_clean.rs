//! no-calls-under-lock CLEAN fixture: the `fx.stats` guard is released
//! (by scope exit or an explicit `drop`) before the endpoint, the bus,
//! or the filesystem is touched.

use std::sync::Mutex;

pub struct Guarded {
    // lock-order: fx.stats
    stats: Mutex<u64>,
}

impl Guarded {
    pub fn snapshot_then_query(&self, endpoint: &dyn Endpoint, query: &str) -> u64 {
        let snapshot = {
            let guard = lock_or_recover("fx.stats", &self.stats);
            *guard
        };
        snapshot + endpoint.select(query)
    }

    pub fn drop_then_publish(&self, bus: &Bus, event: u64) {
        let guard = lock_or_recover("fx.stats", &self.stats);
        let snapshot = *guard;
        drop(guard);
        bus.publish(snapshot + event);
    }

    pub fn scope_then_persist(&self, path: &str) -> u64 {
        let snapshot;
        {
            let guard = lock_or_recover("fx.stats", &self.stats);
            snapshot = *guard;
        }
        let bytes = std::fs::read(path);
        snapshot + bytes.len() as u64
    }
}
