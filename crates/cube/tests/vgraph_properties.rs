//! Property-based tests of Virtual Schema Graph invariants: for arbitrary
//! randomly-shaped level trees, hierarchies partition the leaves, parents
//! are consistent with path prefixes, and stats add up.

use re2x_cube::{DimensionId, VirtualSchemaGraph};
use re2x_testkit::{check, TestRng};

/// A random schema description: per dimension, a list of levels given as
/// (parent index within the dimension or none, member count). Level 0 is
/// the base; later levels attach to an arbitrary earlier level.
fn gen_schema(rng: &mut TestRng) -> Vec<Vec<(Option<usize>, usize)>> {
    let dims = rng.gen_range(1usize..5);
    (0..dims)
        .map(|_| {
            let levels = rng.gen_range(1usize..6);
            (0..levels)
                .map(|i| {
                    let parent = if i == 0 {
                        None
                    } else if rng.gen_bool(0.5) {
                        Some(rng.gen_range(0usize..256) % i)
                    } else {
                        Some(0)
                    };
                    (parent, rng.gen_range(1usize..500))
                })
                .collect()
        })
        .collect()
}

fn build(spec: &[Vec<(Option<usize>, usize)>]) -> VirtualSchemaGraph {
    let mut v = VirtualSchemaGraph::new("http://ex/Obs");
    for (d, levels) in spec.iter().enumerate() {
        let dim = v.add_dimension(format!("http://ex/d{d}"), format!("D{d}"));
        let mut paths: Vec<Vec<String>> = Vec::new();
        for (l, (parent, count)) in levels.iter().enumerate() {
            let mut path = match parent {
                None => vec![format!("http://ex/d{d}")],
                Some(p) => paths[*p].clone(),
            };
            if parent.is_some() {
                path.push(format!("http://ex/d{d}/up{l}"));
            }
            v.add_level(dim, path.clone(), *count, vec![], format!("L{d}_{l}"));
            paths.push(path);
        }
    }
    v
}

#[test]
fn hierarchy_and_parent_invariants() {
    check("hierarchy_and_parent_invariants", |rng| {
        let spec = gen_schema(rng);
        let v = build(&spec);
        let total_levels: usize = spec.iter().map(Vec::len).sum();
        assert_eq!(v.levels().len(), total_levels);
        assert_eq!(v.dimensions().len(), spec.len());

        // parent relation ⇔ path-prefix relation
        for level in v.levels() {
            match v.parent(level.id) {
                None => assert_eq!(level.depth(), 1),
                Some(parent) => {
                    let p = v.level(parent);
                    assert_eq!(p.path.as_slice(), &level.path[..level.path.len() - 1]);
                    assert!(p.is_ancestor_of(level));
                    assert!(v.is_coarser(level.id, parent));
                    assert!(v.children(parent).contains(&level.id));
                }
            }
        }

        // hierarchies: one per leaf, each a base→leaf parent chain, and
        // every level appears in at least one hierarchy
        let hierarchies = v.hierarchies();
        let leaves = v
            .levels()
            .iter()
            .filter(|l| v.children(l.id).is_empty())
            .count();
        assert_eq!(hierarchies.len(), leaves);
        let mut covered = std::collections::HashSet::new();
        for h in &hierarchies {
            assert!(v.parent(h[0]).is_none());
            for w in h.windows(2) {
                assert_eq!(v.parent(w[1]), Some(w[0]));
            }
            covered.extend(h.iter().copied());
        }
        assert_eq!(covered.len(), total_levels);

        // stats add up
        let stats = v.stats();
        assert_eq!(stats.levels, total_levels);
        assert_eq!(stats.hierarchies, leaves);
        let member_sum: usize = spec.iter().flatten().map(|(_, c)| c).sum();
        assert_eq!(stats.members, member_sum);
        assert!(stats.vgraph_bytes > 0);
    });
}

#[test]
fn level_lookup_by_path_is_total_and_injective() {
    check("level_lookup_by_path_is_total_and_injective", |rng| {
        let spec = gen_schema(rng);
        let v = build(&spec);
        let mut seen = std::collections::HashSet::new();
        for level in v.levels() {
            let found = v.level_by_path(&level.path);
            assert_eq!(found, Some(level.id));
            assert!(seen.insert(level.path.clone()), "paths are unique");
        }
        assert!(v.level_by_path(&["http://nowhere".to_owned()]).is_none());
    });
}

#[test]
fn dimension_partition() {
    check("dimension_partition", |rng| {
        let spec = gen_schema(rng);
        let v = build(&spec);
        // every level belongs to exactly the dimension its path starts at
        for level in v.levels() {
            let dim = v.dimension(level.dimension);
            assert_eq!(&level.path[0], &dim.predicate);
        }
        let per_dim: usize = (0..spec.len())
            .map(|d| v.levels_of(DimensionId(d as u32)).count())
            .sum();
        assert_eq!(per_dim, v.levels().len());
    });
}
