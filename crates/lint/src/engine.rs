//! Workspace walk, rule dispatch, suppression handling, baseline
//! matching, and the lock-graph assembly.

use crate::findings::Finding;
use crate::rules::dataflow::{self, DataflowContext};
use crate::rules::lock_order::{self, LockEdge, LockRegistration};
use crate::rules::{debug_output, forbid_unsafe, panic_freedom, seam, wallclock};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Crates whose whole purpose is measurement or test infrastructure:
/// exempt from panic-freedom (asserting is their job).
const PANIC_FREEDOM_SKIP: &[&str] = &["bench", "testkit"];
/// The experiment harness measures wall time by design.
const WALLCLOCK_SKIP: &[&str] = &["bench"];
/// The experiment harness reports to the terminal by design.
const DEBUG_OUTPUT_SKIP: &[&str] = &["bench"];
/// The algorithm layers bound to the `SparqlEndpoint` seam.
const SEAM_ONLY: &[&str] = &["core", "cube"];
/// Measurement/test-infrastructure crates are exempt from the dataflow
/// rules too: they assert, print, and block by design.
const DATAFLOW_SKIP: &[&str] = &["bench", "testkit"];

/// The result of linting a set of files (before baseline application).
#[derive(Debug, Default)]
pub struct LintResult {
    /// Findings that survived `lint:allow` suppression.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by `lint:allow` comments.
    pub suppressed: usize,
    /// The workspace lock registry.
    pub registrations: Vec<LockRegistration>,
    /// The workspace nested-acquisition graph (extracted from code).
    pub edges: Vec<LockEdge>,
    /// Nesting orders declared in comments (`// lock-order: A -> B`).
    pub declared: Vec<LockEdge>,
}

/// Lints prepared source files (the unit the fixture tests drive).
pub fn lint_files(files: &[SourceFile]) -> LintResult {
    let mut result = LintResult::default();

    // Pass 1: assemble the workspace lock registry, the extracted nesting
    // graph, and the declared edges — the dataflow rules need the declared
    // set regardless of which file declares an edge.
    let mut per_file_locks = Vec::with_capacity(files.len());
    for file in files {
        let locks = lock_order::analyze(file);
        result.registrations.extend(locks.registrations.clone());
        result.edges.extend(locks.edges.clone());
        result.declared.extend(locks.declared.clone());
        per_file_locks.push(locks);
    }
    let declared_pairs: Vec<(String, String)> = result
        .declared
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();

    // Pass 2: per-file rules.
    for (file, locks) in files.iter().zip(per_file_locks) {
        let mut raw: Vec<Finding> = locks.findings;
        if !PANIC_FREEDOM_SKIP.contains(&file.crate_name.as_str()) {
            raw.extend(panic_freedom::check(file));
        }
        if !WALLCLOCK_SKIP.contains(&file.crate_name.as_str()) {
            raw.extend(wallclock::check(file));
        }
        if !DEBUG_OUTPUT_SKIP.contains(&file.crate_name.as_str()) {
            raw.extend(debug_output::check(file));
        }
        if SEAM_ONLY.contains(&file.crate_name.as_str()) {
            raw.extend(seam::check(file));
        }
        if !DATAFLOW_SKIP.contains(&file.crate_name.as_str()) {
            let ctx = DataflowContext {
                field_to_name: locks
                    .registrations
                    .iter()
                    .map(|r| (r.field.as_str(), r.name.as_str()))
                    .collect(),
                declared: &declared_pairs,
            };
            raw.extend(dataflow::check(file, &ctx));
        }
        if file.path.ends_with("src/lib.rs") {
            raw.extend(forbid_unsafe::check(file));
        }

        for finding in raw {
            if file.is_allowed(finding.rule, finding.line) {
                result.suppressed += 1;
            } else {
                result.findings.push(finding);
            }
        }
    }

    // Workspace-level lock-order checks: duplicate names, declared edges
    // naming unregistered locks, and cycles over the union of extracted
    // and declared edges (a declared deadlock is still a deadlock).
    result
        .findings
        .extend(lock_order::duplicate_name_findings(&result.registrations));
    for edge in &result.declared {
        for endpoint in [&edge.from, &edge.to] {
            if !result.registrations.iter().any(|r| &r.name == endpoint) {
                result.findings.push(Finding {
                    rule: "lock-order",
                    file: edge.file.clone(),
                    line: edge.line,
                    snippet: format!("lock-order: {} -> {}", edge.from, edge.to),
                    message: format!(
                        "declared edge references `{endpoint}`, which is not a registered lock"
                    ),
                });
            }
        }
    }
    let mut graph = result.edges.clone();
    graph.extend(result.declared.iter().cloned());
    for cycle in lock_order::find_cycles(&graph) {
        let (file, line) = cycle.site.clone();
        result.findings.push(Finding {
            rule: "lock-order",
            file,
            line,
            snippet: cycle.path.join(" -> "),
            message: format!(
                "lock-order cycle: {} (a thread interleaving can deadlock here)",
                cycle.path.join(" -> ")
            ),
        });
    }

    // Deterministic output order.
    result
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    result
}

/// Reads and prepares every `crates/*/src/**/*.rs` under `root`.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut sources = Vec::new();
        walk_rs(&crate_dir.join("src"), &mut sources)?;
        sources.sort();
        for path in sources {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::new(rel, crate_name.clone(), text));
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("walk error: {e}"))?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// The outcome of matching findings against a checked-in baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail the gate.
    pub new_findings: Vec<Finding>,
    /// Number of findings absorbed by baseline entries.
    pub matched: usize,
    /// Baseline entries that no longer match any finding — the baseline
    /// must shrink when violations are fixed, so these also fail the gate.
    pub stale: Vec<String>,
}

/// Matches findings against baseline lines (multiset semantics: one
/// baseline line absorbs exactly one finding with the same key).
pub fn apply_baseline(findings: Vec<Finding>, baseline_lines: &[String]) -> BaselineOutcome {
    let mut budget: Vec<(String, usize)> = Vec::new();
    for line in baseline_lines {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match budget.iter_mut().find(|(k, _)| k == line) {
            Some((_, n)) => *n += 1,
            None => budget.push((line.to_owned(), 1)),
        }
    }
    let mut outcome = BaselineOutcome::default();
    for finding in findings {
        let key = finding.baseline_key();
        match budget.iter_mut().find(|(k, n)| *k == key && *n > 0) {
            Some((_, n)) => {
                *n -= 1;
                outcome.matched += 1;
            }
            None => outcome.new_findings.push(finding),
        }
    }
    for (key, n) in budget {
        for _ in 0..n {
            outcome.stale.push(key.clone());
        }
    }
    outcome.stale.sort();
    outcome
}

/// Renders the machine-readable report the binary prints for
/// `--format json`. Every string field is routed through the shared
/// [`crate::findings::json_escape`] escaper, so snippets containing
/// quotes or backslashes (`.expect("non-empty")`) stay parseable.
pub fn report_to_json(outcome: &BaselineOutcome, result: &LintResult) -> String {
    use crate::findings::{finding_to_json, json_escape};
    let findings_json: Vec<String> = outcome.new_findings.iter().map(finding_to_json).collect();
    let stale_json: Vec<String> = outcome
        .stale
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    let edge_json = |e: &LockEdge| {
        format!(
            "{{\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
            json_escape(&e.from),
            json_escape(&e.to),
            json_escape(&e.file),
            e.line
        )
    };
    let edges_json: Vec<String> = result.edges.iter().map(edge_json).collect();
    let declared_json: Vec<String> = result.declared.iter().map(edge_json).collect();
    let locks_json: Vec<String> = result
        .registrations
        .iter()
        .map(|r| format!("\"{}\"", json_escape(&r.name)))
        .collect();
    format!(
        "{{\"findings\":[{}],\"stale_baseline\":[{}],\"baseline_matched\":{},\"suppressed\":{},\"locks\":[{}],\"lock_edges\":[{}],\"declared_edges\":[{}]}}",
        findings_json.join(","),
        stale_json.join(","),
        outcome.matched,
        result.suppressed,
        locks_json.join(","),
        edges_json.join(","),
        declared_json.join(",")
    )
}

/// Renders findings as baseline lines, sorted by rule, then path, then
/// snippet — byte-identical output for identical findings regardless of
/// discovery order, so `--write-baseline` diffs are reviewable.
pub fn to_baseline(findings: &[Finding]) -> String {
    let mut ordered: Vec<&Finding> = findings.iter().collect();
    ordered.sort_by(|a, b| (a.rule, &a.file, &a.snippet).cmp(&(b.rule, &b.file, &b.snippet)));
    let lines: Vec<String> = ordered.iter().map(|f| f.baseline_key()).collect();
    let mut out = String::from(
        "# re2x-lint suppression baseline: pre-existing findings accepted as debt.\n\
         # The gate fails on any finding not listed here AND on stale entries,\n\
         # so this file can only shrink. Regenerate with: re2x-lint --write-baseline\n",
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}
