//! no-wallclock CLEAN fixture: durations flow in from callers; no clock
//! is read here.

use std::time::Duration;

pub fn budget_left(total: Duration, used: Duration) -> Duration {
    total.saturating_sub(used)
}

#[cfg(test)]
mod tests {
    // clock reads inside tests are fine
    #[test]
    fn timing_in_tests_is_allowed() {
        let _ = std::time::Instant::now();
    }
}
