//! Property-based tests of the interactive session: arbitrary sequences of
//! refinement operations and backtracking must preserve the session
//! invariants (monotone metrics, consistent history, example containment).

use proptest::prelude::*;
use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{RefineOp, Session, SessionConfig};

#[derive(Debug, Clone, Copy)]
enum Action {
    Refine(RefineOp, usize),
    Backtrack,
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (0usize..4, 0usize..6).prop_map(|(op, pick)| {
                let op = [
                    RefineOp::Disaggregate,
                    RefineOp::TopK,
                    RefineOp::Percentile,
                    RefineOp::Similarity,
                ][op];
                Action::Refine(op, pick)
            }),
            1 => Just(Action::Backtrack),
        ],
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_exploration_preserves_invariants(actions in arb_actions()) {
        let mut dataset = re2x_datagen::running::generate();
        let graph = std::mem::take(&mut dataset.graph);
        let endpoint = LocalEndpoint::new(graph);
        let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap")
            .schema;
        let mut session = Session::new(&endpoint, &schema, SessionConfig::default());

        let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
        prop_assert!(!outcome.queries.is_empty());
        session.choose(outcome.queries[0].clone()).expect("runs");

        let mut last_metrics = session.metrics();
        for action in actions {
            match action {
                Action::Refine(op, pick) => {
                    let refinements = session.refinements(op).expect("refinement generation");
                    // offering refinements never shrinks the accounting
                    let m = session.metrics();
                    prop_assert!(m.interactions > last_metrics.interactions);
                    prop_assert!(m.paths_offered >= last_metrics.paths_offered);
                    last_metrics = m;
                    if refinements.is_empty() {
                        continue;
                    }
                    let r = refinements[pick % refinements.len()].clone();
                    let depth_before = session.history().len();
                    let step = session.apply(r).expect("refined query runs");
                    // the refined result still contains the example
                    prop_assert!(
                        !step.query.matching_rows(&step.solutions, endpoint.graph()).is_empty(),
                        "example lost by {op:?}: {}",
                        step.query.sparql()
                    );
                    prop_assert_eq!(session.history().len(), depth_before + 1);
                    last_metrics = session.metrics();
                }
                Action::Backtrack => {
                    let depth_before = session.history().len();
                    let did = session.backtrack();
                    if depth_before > 1 {
                        prop_assert!(did);
                        prop_assert_eq!(session.history().len(), depth_before - 1);
                    } else {
                        prop_assert!(!did);
                        prop_assert_eq!(session.history().len(), depth_before);
                    }
                }
            }
            // the current step is always executable & reproducible
            let current = session.current().expect("history never empties");
            let rerun = endpoint.select(&current.query.query).expect("still runs");
            prop_assert_eq!(rerun.len(), current.solutions.len());
        }
    }
}
