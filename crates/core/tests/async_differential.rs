//! Differential tests: ReOLAP synthesis with batched async candidate
//! validation, and session refinement previews over the async adapter,
//! must be byte-identical to their serial equivalents — same accepted
//! candidates, same result sets, same issued-query counts (for `reolap`,
//! whose serial walk never short-circuits), and reconciling provenance.

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_obs::Tracer;
use re2x_sparql::{LocalEndpoint, SparqlEndpoint, TracingEndpoint};
use re2xolap::{reolap, reolap_multi, MatchMode, RefineOp, ReolapConfig, Session, SessionConfig};
use std::time::Duration;

fn eurostat_fixture() -> (LocalEndpoint, re2x_cube::VirtualSchemaGraph) {
    let dataset = re2x_datagen::eurostat::generate(500, 7);
    let endpoint = LocalEndpoint::new(dataset.graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(dataset.observation_class))
        .expect("bootstrap")
        .schema;
    (endpoint, schema)
}

#[test]
fn async_validation_accepts_the_same_candidates() {
    let (endpoint, schema) = eurostat_fixture();
    // "Germany" is ambiguous in the Eurostat shape (origin and destination
    // reuse country entities), so several candidates reach validation.
    for example in [
        &["Germany", "2014"] as &[&str],
        &["Germany", "France"],
        &["Sweden"],
    ] {
        let serial = reolap(&endpoint, &schema, example, &ReolapConfig::default()).expect("serial");
        for workers in [1, 4] {
            let config = ReolapConfig {
                validation_workers: workers,
                ..Default::default()
            };
            let batched = reolap(&endpoint, &schema, example, &config).expect("async");
            assert_eq!(
                batched.queries, serial.queries,
                "{example:?} with {workers} workers diverged from serial"
            );
            assert_eq!(
                batched.interpretations_considered,
                serial.interpretations_considered
            );
        }
    }
}

/// Queries in the tracer's unattributed bucket (bootstrap and untraced
/// serial runs land there; the async batch must not add to it).
fn unattributed(tracer: &Tracer) -> u64 {
    tracer
        .provenance()
        .iter()
        .find(|(path, _)| path == re2x_obs::UNATTRIBUTED)
        .map(|(_, s)| s.queries())
        .unwrap_or(0)
}

#[test]
fn async_validation_issues_identical_queries_and_reconciles_provenance() {
    let dataset = re2x_datagen::eurostat::generate(500, 7);
    let tracer = Tracer::enabled();
    let endpoint = TracingEndpoint::new(LocalEndpoint::new(dataset.graph), tracer.clone());
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(dataset.observation_class))
        .expect("bootstrap")
        .schema;

    endpoint.reset_stats();
    let config = ReolapConfig::default();
    reolap(&endpoint, &schema, &["Germany", "2014"], &config).expect("serial");
    let serial_stats = endpoint.stats();

    endpoint.reset_stats();
    let stray_before = unattributed(&tracer);
    let config = ReolapConfig {
        validation_workers: 4,
        tracer: tracer.clone(),
        ..Default::default()
    };
    reolap(&endpoint, &schema, &["Germany", "2014"], &config).expect("async");
    let async_stats = endpoint.stats();

    // the serial reolap walk never short-circuits between candidates, so
    // the batch issues exactly the same queries
    assert_eq!(async_stats.asks, serial_stats.asks);
    assert_eq!(async_stats.selects, serial_stats.selects);
    assert_eq!(async_stats.keyword_searches, serial_stats.keyword_searches);

    // every pool-thread ASK adopted its submitter's validate span; the
    // only other ask-issuing path is per-keyword matching
    let provenance = tracer.provenance();
    let asks_under = |suffix: &str| -> u64 {
        provenance
            .iter()
            .filter(|(path, _)| path.ends_with(suffix))
            .map(|(_, s)| s.asks)
            .sum()
    };
    let validate_asks = asks_under("reolap.validate");
    assert!(
        validate_asks > 0,
        "a real batch was validated: {provenance:?}"
    );
    assert_eq!(
        validate_asks + asks_under("reolap.match"),
        async_stats.asks,
        "validation ASKs attribute to reolap/reolap.validate: {provenance:?}"
    );
    assert_eq!(
        unattributed(&tracer),
        stray_before,
        "the async batch must not add unattributed queries: {provenance:?}"
    );
}

#[test]
fn async_multi_tuple_validation_accepts_the_same_combos() {
    let (endpoint, schema) = eurostat_fixture();
    let tuples = vec![
        vec!["Germany".to_owned(), "2013".to_owned()],
        vec!["France".to_owned(), "2014".to_owned()],
    ];
    let serial =
        reolap_multi(&endpoint, &schema, &tuples, &ReolapConfig::default()).expect("serial");
    for workers in [1, 4] {
        let config = ReolapConfig {
            validation_workers: workers,
            ..Default::default()
        };
        let batched = reolap_multi(&endpoint, &schema, &tuples, &config).expect("async");
        assert_eq!(
            batched.queries, serial.queries,
            "multi-tuple with {workers} workers diverged from serial"
        );
    }
}

#[test]
fn batched_validation_overlaps_injected_latency() {
    let dataset = re2x_datagen::eurostat::generate(500, 7);
    let endpoint = LocalEndpoint::new(dataset.graph).with_latency(Duration::from_millis(2));
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(dataset.observation_class))
        .expect("bootstrap")
        .schema;
    // keyword matching makes "2014" ambiguous across months and the year
    // level, so validation sees a real batch of candidates
    let serial_config = ReolapConfig {
        mode: MatchMode::Keyword,
        ..Default::default()
    };
    let serial = reolap(&endpoint, &schema, &["Germany", "2014"], &serial_config).expect("serial");
    let async_config = ReolapConfig {
        validation_workers: 8,
        ..serial_config
    };
    let batched = reolap(&endpoint, &schema, &["Germany", "2014"], &async_config).expect("async");
    assert_eq!(batched.queries, serial.queries);
    assert!(
        batched.queries.len() > 1,
        "expected an ambiguous example with several valid interpretations"
    );
    assert!(
        batched.elapsed < serial.elapsed,
        "batched validation ({:?}) should beat serial ({:?}) under 2 ms per-query latency",
        batched.elapsed,
        serial.elapsed
    );
}

#[test]
fn session_preview_async_equals_serial() {
    let (endpoint, schema) = eurostat_fixture();
    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
    session.choose(outcome.queries[0].clone()).expect("runs");
    let refinements = session
        .refinements(RefineOp::Disaggregate)
        .expect("refinements");
    assert!(refinements.len() > 1, "need a real batch to preview");

    let before = endpoint.stats().total_queries();
    let serial = session.preview(&refinements, 0).expect("serial preview");
    let serial_queries = endpoint.stats().total_queries() - before;

    let before = endpoint.stats().total_queries();
    let overlapped = session.preview(&refinements, 4).expect("async preview");
    let async_queries = endpoint.stats().total_queries() - before;

    assert_eq!(
        overlapped, serial,
        "previewed result sets must be identical"
    );
    assert_eq!(serial.len(), refinements.len());
    assert_eq!(async_queries, serial_queries);
}

#[test]
fn session_preview_attributes_to_its_own_span() {
    let dataset = re2x_datagen::eurostat::generate(400, 3);
    let tracer = Tracer::enabled();
    let endpoint = TracingEndpoint::new(LocalEndpoint::new(dataset.graph), tracer.clone());
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(dataset.observation_class))
        .expect("bootstrap")
        .schema;
    let config = SessionConfig {
        tracer: tracer.clone(),
        ..Default::default()
    };
    let mut session = Session::new(&endpoint, &schema, config);
    let outcome = session.synthesize(&["Germany"]).expect("synthesis");
    session.choose(outcome.queries[0].clone()).expect("runs");
    let refinements = session
        .refinements(RefineOp::Disaggregate)
        .expect("refinements");
    assert!(refinements.len() > 1);
    let stray_before = unattributed(&tracer);
    session.preview(&refinements, 4).expect("async preview");

    let provenance = tracer.provenance();
    let preview_selects: u64 = provenance
        .iter()
        .filter(|(path, _)| path.ends_with("session.preview"))
        .map(|(_, s)| s.selects)
        .sum();
    assert_eq!(preview_selects, refinements.len() as u64);
    assert_eq!(
        unattributed(&tracer),
        stray_before,
        "the preview batch must not add unattributed queries: {provenance:?}"
    );
}
