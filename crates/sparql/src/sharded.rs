//! Scatter-gather evaluation over hash-partitioned shards.
//!
//! [`ShardedEndpoint`] is a [`SparqlEndpoint`] decorator over N
//! hash-partitioned [`Graph`] shards built by `re2x_rdf::partition`:
//! qb:Observation subjects are hash-partitioned while dimension, hierarchy
//! and schema triples are replicated to every shard, so the star-shaped
//! patterns RE²xOLAP emits evaluate entirely shard-locally. A query the
//! decomposer can prove mergeable *scatters* to all shards in parallel
//! (scoped threads, like `crate::async_endpoint`) and the partial results
//! *gather* through a merge layer:
//!
//! * SUM/COUNT/MIN/MAX partial-merge by group key,
//! * AVG is rewritten to SUM + COUNT_NUMERIC on the shards and recombined,
//! * ORDER BY + LIMIT/OFFSET applies after a canonically-ordered merge,
//! * DISTINCT deduplicates with exactly the local `DedupKey` semantics,
//! * HAVING evaluates at the gather over the merged aggregates.
//!
//! Everything else — ASK, keyword lookups, predicate-variable probes,
//! OPTIONAL/UNION, `COUNT(DISTINCT …)`, queries that would be rejected by
//! the local validator, unordered LIMIT — conservatively falls back to a
//! single full *replica*, which also serves [`SparqlEndpoint::graph`] term
//! resolution. Results are proven byte-identical to [`LocalEndpoint`] by
//! the differential suite (`tests/sharded_differential.rs`): scattered
//! queries against the canonical reference order
//! ([`reference_solutions`]), replica-routed queries raw.
//!
//! Merged rows always come back in a *canonical* deterministic order: the
//! query's ORDER BY keys first (exactly the local comparator), then a
//! structural whole-row tiebreak — so scatter results do not depend on
//! shard completion order or shard count.
//!
//! Floating-point caveat: partial SUM/AVG re-associates additions. For
//! integer-valued measures (all bundled generators) f64 addition is exact
//! and the merge is bit-identical to local evaluation; for non-integer
//! measures it is correct up to floating-point re-association.

// lint:allow-file(no-wallclock, times scatter legs to expose per-shard busy/skew metrics)

use crate::ast::{
    AggFunc, Expr, Order, OrderKey, PatternElement, Predicate, Query, QueryForm, SelectItem,
    TermPattern,
};
use crate::endpoint::{EndpointStats, LocalEndpoint, SparqlEndpoint};
use crate::error::SparqlError;
use crate::eval::DedupKey;
use crate::expr::{eval_expr, EvalContext};
use crate::value::{total_compare_numeric, Solutions, Value};
use re2x_obs::{label, lock_or_recover, Metrics};
use re2x_rdf::hash::FxHashMap;
use re2x_rdf::partition::{partition, partition_layout, PartitionLayout, PredicateRole};
use re2x_rdf::vocab::{qb, rdf};
use re2x_rdf::{Graph, TermId};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the decomposer routes a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Proven mergeable: scattered to all shards and gathered.
    Scatter,
    /// Conservative fallback: answered by the single full replica.
    Replica,
}

/// Scatter-gather [`SparqlEndpoint`] over hash-partitioned shards.
///
/// Composes anywhere in the decorator stack (under
/// [`crate::CachingEndpoint`] / [`crate::TracingEndpoint`]); per-shard
/// activity is surfaced through optional [`re2x_obs::Metrics`]
/// (`shard_busy{shard="i"}` gauges, per-shard query/row counters, a
/// `shard_skew` gauge).
pub struct ShardedEndpoint {
    shards: Vec<LocalEndpoint>,
    replica: LocalEndpoint,
    layout: PartitionLayout,
    class_iri: String,
    latency: Option<Duration>,
    row_latency: Option<Duration>,
    // lock-order: sparql.sharded.stats
    stats: Mutex<EndpointStats>,
    scatters: AtomicU64,
    fallbacks: AtomicU64,
    metrics: Option<Arc<Metrics>>,
}

impl ShardedEndpoint {
    /// Partitions `graph` into `shards` shards on the W3C Data Cube
    /// observation class and keeps a full replica for fallback queries.
    pub fn new(graph: Graph, shards: usize) -> Self {
        Self::with_observation_class(graph, qb::OBSERVATION, shards)
    }

    /// Like [`ShardedEndpoint::new`] with an explicit fact class.
    pub fn with_observation_class(graph: Graph, class: &str, shards: usize) -> Self {
        let parts = partition(&graph, class, shards);
        let endpoint = ShardedEndpoint {
            shards: parts.shards.into_iter().map(LocalEndpoint::new).collect(),
            replica: LocalEndpoint::new(graph),
            layout: parts.layout,
            class_iri: class.to_owned(),
            latency: None,
            row_latency: None,
            stats: Mutex::new(EndpointStats::default()),
            scatters: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            metrics: None,
        };
        endpoint.publish_layout_metrics();
        endpoint
    }

    /// Re-assembles a sharded endpoint from already-built shard graphs —
    /// the per-shard artifacts of `re2x_rdf::load_shard_snapshot` — plus
    /// the full replica, instead of re-partitioning the replica from
    /// scratch. Only the routing layout is re-derived (one scan of the
    /// replica, no shard graphs built); the shard graphs are trusted to be
    /// the partition of the replica, which the snapshot key scheme stamps
    /// and the differential suite proves.
    pub fn from_loaded_shards(replica: Graph, class: &str, shard_graphs: Vec<Graph>) -> Self {
        let layout = partition_layout(&replica, class, shard_graphs.len());
        let endpoint = ShardedEndpoint {
            shards: shard_graphs.into_iter().map(LocalEndpoint::new).collect(),
            replica: LocalEndpoint::new(replica),
            layout,
            class_iri: class.to_owned(),
            latency: None,
            row_latency: None,
            stats: Mutex::new(EndpointStats::default()),
            scatters: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            metrics: None,
        };
        endpoint.publish_layout_metrics();
        endpoint
    }

    /// Injects a fixed per-query latency into every shard *and* the replica
    /// (each stands in for a remote endpoint round-trip).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self.rebuild_backends()
    }

    /// Injects a per-result-row latency into every shard and the replica
    /// (simulating response serialization/transfer of remote endpoints —
    /// the cost the scatter actually parallelizes).
    pub fn with_row_latency(mut self, per_row: Duration) -> Self {
        self.row_latency = Some(per_row);
        self.rebuild_backends()
    }

    /// Attaches a metrics registry receiving per-shard gauges/counters.
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self.publish_layout_metrics();
        self
    }

    fn rebuild_backends(mut self) -> Self {
        let apply = |endpoint: LocalEndpoint, lat: Option<Duration>, row: Option<Duration>| {
            let mut rebuilt = LocalEndpoint::new(endpoint.into_graph());
            if let Some(l) = lat {
                rebuilt = rebuilt.with_latency(l);
            }
            if let Some(r) = row {
                rebuilt = rebuilt.with_row_latency(r);
            }
            rebuilt
        };
        let (lat, row) = (self.latency, self.row_latency);
        self.shards = self
            .shards
            .into_iter()
            .map(|s| apply(s, lat, row))
            .collect();
        self.replica = apply(self.replica, lat, row);
        self
    }

    fn publish_layout_metrics(&self) {
        if let Some(metrics) = &self.metrics {
            metrics.gauge_set("shard_skew", self.layout.skew());
            for (i, &facts) in self.layout.shard_fact_triples.iter().enumerate() {
                metrics.gauge_set(
                    &label("shard_fact_triples", &[("shard", &i.to_string())]),
                    facts as f64,
                );
            }
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partition layout (per-shard fact counts, skew, predicate roles).
    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Statistics of one shard's backend endpoint.
    pub fn shard_stats(&self, shard: usize) -> EndpointStats {
        self.shards[shard].stats()
    }

    /// Statistics of the fallback replica endpoint.
    pub fn replica_stats(&self) -> EndpointStats {
        self.replica.stats()
    }

    /// Number of queries answered by scatter-gather so far.
    pub fn scatter_count(&self) -> u64 {
        self.scatters.load(AtomicOrdering::Relaxed)
    }

    /// Number of queries answered by the replica fallback so far.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(AtomicOrdering::Relaxed)
    }

    /// How this endpoint would route `query` (decomposition dry-run).
    pub fn route(&self, query: &Query) -> Route {
        if self.decompose(query).is_some() {
            Route::Scatter
        } else {
            Route::Replica
        }
    }

    // ---- decomposer -------------------------------------------------------

    /// Proves a query mergeable and builds its scatter plan, or returns
    /// `None` for the conservative replica fallback. Soundness argument:
    /// a plan exists only when every WHERE pattern is either *fact-anchored*
    /// (first path predicate routes only fact-subject triples, all later
    /// path hops replicated) on one shared subject, or fully replicated.
    /// Every solution therefore commits all its fact triples to one fact
    /// subject `s`, and shard `hash(s)` holds exactly those triples plus all
    /// replicated ones — the solution materializes on exactly one shard,
    /// with local multiplicity.
    fn decompose(&self, query: &Query) -> Option<ScatterPlan> {
        if query.form != QueryForm::Select || self.layout.fact_triples == 0 {
            return None;
        }
        // Flat conjunctive WHERE only; aggregate-in-filter must surface the
        // local validator's error, so it falls back too.
        let mut patterns = Vec::new();
        for element in &query.wher {
            match element {
                PatternElement::Triple(t) => patterns.push(t),
                PatternElement::Filter(f) => {
                    if f.has_aggregate() {
                        return None;
                    }
                }
                PatternElement::Optional(_) | PatternElement::Union(_) => return None,
            }
        }
        if patterns.is_empty() {
            return None;
        }

        // Classify each pattern; all fact-anchored patterns must share one
        // subject term so the whole star hashes to a single shard.
        let graph = self.replica.graph();
        let mut fact_subject: Option<&TermPattern> = None;
        for t in &patterns {
            let path = match &t.predicate {
                Predicate::Path(p) => p,
                Predicate::Var(_) => return None,
            };
            let role = |iri: &str| match graph.iri_id(iri) {
                Some(id) => self.layout.predicate_role(id),
                None => PredicateRole::Unused,
            };
            let first_is_fact = match role(&path[0]) {
                PredicateRole::Fact => true,
                // The one mergeable Mixed shape: the observation-class type
                // probe itself, whose matches are exactly the fact subjects.
                PredicateRole::Mixed => {
                    let is_class_probe = path.len() == 1
                        && path[0] == rdf::TYPE
                        && matches!(&t.object, TermPattern::Iri(c) if *c == self.class_iri);
                    if !is_class_probe {
                        return None;
                    }
                    true
                }
                PredicateRole::Replicated | PredicateRole::Unused => false,
            };
            // Later path hops traverse objects of the first hop; only
            // replicated continuations are provably shard-local.
            for hop in &path[1..] {
                match role(hop) {
                    PredicateRole::Replicated | PredicateRole::Unused => {}
                    PredicateRole::Fact | PredicateRole::Mixed => return None,
                }
            }
            if first_is_fact {
                if !matches!(&t.subject, TermPattern::Var(_) | TermPattern::Iri(_)) {
                    return None;
                }
                match fact_subject {
                    None => fact_subject = Some(&t.subject),
                    Some(existing) if *existing == t.subject => {}
                    Some(_) => return None,
                }
            }
        }
        // Without a fact-anchored pattern every shard would return the full
        // (replicated) result and the gather would multiply rows.
        fact_subject?;

        // Mirror the local validator: any shape it rejects must fall back so
        // the replica reproduces the exact error.
        let aggregating = query.is_aggregate();
        let items = effective_items(query);
        if aggregating {
            let pattern_vars = query.pattern_variables();
            for g in &query.group_by {
                if !pattern_vars.iter().any(|v| v == g) {
                    return None;
                }
            }
            for item in &items {
                match item {
                    SelectItem::Var(v) => {
                        if !query.group_by.iter().any(|g| g == v) {
                            return None;
                        }
                    }
                    SelectItem::Agg { func, .. } => {
                        if *func == AggFunc::CountDistinct {
                            return None;
                        }
                    }
                }
            }
        } else if query.having.is_some() {
            return None;
        }
        for key in &query.order_by {
            if !items.iter().any(|i| i.name() == key.column) {
                return None;
            }
        }
        // An unordered LIMIT/OFFSET picks an arbitrary subset locally; no
        // deterministic merge reproduces that choice.
        if (query.limit.is_some() || query.offset.is_some()) && query.order_by.is_empty() {
            return None;
        }

        if aggregating {
            self.decompose_aggregate(query, items)
        } else {
            let shard_query = Query {
                form: QueryForm::Select,
                select: query.select.clone(),
                distinct: query.distinct,
                wher: query.wher.clone(),
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: None,
                offset: None,
            };
            Some(ScatterPlan {
                shard_query,
                merge: MergeSpec::Rows {
                    distinct: query.distinct,
                },
            })
        }
    }

    fn decompose_aggregate(&self, query: &Query, items: Vec<SelectItem>) -> Option<ScatterPlan> {
        // Distinct original aggregates from the projection and HAVING.
        let mut aggs: Vec<(AggFunc, Expr)> = Vec::new();
        let mut push_agg = |func: AggFunc, expr: &Expr| -> Option<usize> {
            if func == AggFunc::CountDistinct {
                return None; // not partial-mergeable
            }
            Some(position_or_push(&mut aggs, (func, expr.clone())))
        };
        let mut outputs = Vec::with_capacity(items.len());
        for item in &items {
            match item {
                SelectItem::Var(v) => {
                    let key = query.group_by.iter().position(|g| g == v)?;
                    outputs.push(OutputCol::Key(key));
                }
                SelectItem::Agg { func, expr, .. } => {
                    outputs.push(OutputCol::Agg(push_agg(*func, expr)?));
                }
            }
        }
        if let Some(having) = &query.having {
            let mut nodes = Vec::new();
            collect_aggregates(having, &mut nodes);
            for (func, expr) in nodes {
                push_agg(func, &expr)?;
            }
        }

        // Rewrite to shard-local partials: AVG becomes SUM + COUNT_NUMERIC,
        // everything else merges as itself.
        let mut partials: Vec<(AggFunc, Expr)> = Vec::new();
        let recipes: Vec<AggRecipe> = aggs
            .iter()
            .map(|(func, expr)| match func {
                AggFunc::Avg => AggRecipe {
                    func: *func,
                    partial_a: position_or_push(&mut partials, (AggFunc::Sum, expr.clone())),
                    partial_b: position_or_push(
                        &mut partials,
                        (AggFunc::CountNumeric, expr.clone()),
                    ),
                },
                _ => {
                    let a = position_or_push(&mut partials, (*func, expr.clone()));
                    AggRecipe {
                        func: *func,
                        partial_a: a,
                        partial_b: a,
                    }
                }
            })
            .collect();

        let shard_select: Vec<SelectItem> = query
            .group_by
            .iter()
            .map(|g| SelectItem::Var(g.clone()))
            .chain(partials.iter().enumerate().map(|(i, (func, expr))| {
                SelectItem::Agg {
                    func: *func,
                    expr: expr.clone(),
                    // `\u{1}` prefix: can never collide with user columns.
                    alias: format!("\u{1}pm{i}"),
                }
            }))
            .collect();
        let shard_query = Query {
            form: QueryForm::Select,
            select: shard_select,
            distinct: false,
            wher: query.wher.clone(),
            group_by: query.group_by.clone(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        Some(ScatterPlan {
            shard_query,
            merge: MergeSpec::Groups(GroupMerge {
                key_len: query.group_by.len(),
                group_by: query.group_by.clone(),
                aggs,
                recipes,
                outputs,
                names: items.iter().map(|i| i.name().to_owned()).collect(),
                having: query.having.clone(),
                distinct: query.distinct,
            }),
        })
    }

    // ---- scatter / gather -------------------------------------------------

    fn scatter(&self, shard_query: &Query) -> Result<Vec<Solutions>, SparqlError> {
        let results: Vec<Result<Solutions, SparqlError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.select(shard_query)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    // contain a shard panic as a failed scatter instead of
                    // re-panicking at scope exit and killing the caller
                    Err(_) => Err(SparqlError::Endpoint("shard thread panicked".into())),
                })
                .collect()
        });
        results.into_iter().collect()
    }

    fn scatter_and_merge(
        &self,
        query: &Query,
        plan: &ScatterPlan,
    ) -> Result<Solutions, SparqlError> {
        let shard_results = self.scatter(&plan.shard_query)?;
        self.publish_shard_metrics(&shard_results);
        let graph = self.replica.graph();
        let mut merged = match &plan.merge {
            MergeSpec::Rows { distinct } => merge_rows(shard_results, *distinct),
            MergeSpec::Groups(spec) => merge_groups(shard_results, spec, graph),
        };
        canonical_order(&mut merged, &query.order_by, graph);
        let offset = query.offset.unwrap_or(0);
        if offset > 0 {
            merged.rows.drain(..offset.min(merged.rows.len()));
        }
        if let Some(limit) = query.limit {
            merged.rows.truncate(limit);
        }
        Ok(merged)
    }

    fn publish_shard_metrics(&self, shard_results: &[Solutions]) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        for (i, (shard, result)) in self.shards.iter().zip(shard_results).enumerate() {
            let shard_label = i.to_string();
            let labels = [("shard", shard_label.as_str())];
            metrics.gauge_set(
                &label("shard_busy", &labels),
                shard.stats().busy.as_secs_f64(),
            );
            metrics.counter_add(&label("shard_queries", &labels), 1);
            metrics.counter_add(&label("shard_rows", &labels), result.len() as u64);
        }
    }

    fn record(&self, elapsed: Duration, rows: Option<u64>, kind: QueryKind) {
        let mut stats = lock_or_recover("sparql.sharded.stats", &self.stats);
        match kind {
            QueryKind::Select => stats.selects += 1,
            QueryKind::Ask => stats.asks += 1,
            QueryKind::Keyword => stats.keyword_searches += 1,
        }
        if let Some(rows) = rows {
            stats.rows_returned += rows;
        }
        stats.busy += elapsed;
        stats.latency.record(elapsed);
    }
}

enum QueryKind {
    Select,
    Ask,
    Keyword,
}

impl SparqlEndpoint for ShardedEndpoint {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        let start = Instant::now();
        let result = match self.decompose(query) {
            Some(plan) => {
                self.scatters.fetch_add(1, AtomicOrdering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.counter_add("sharded_scatter_queries", 1);
                }
                self.scatter_and_merge(query, &plan)
            }
            None => {
                self.fallbacks.fetch_add(1, AtomicOrdering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.counter_add("sharded_fallback_queries", 1);
                }
                self.replica.select(query)
            }
        };
        let rows = result.as_ref().ok().map(|s| s.len() as u64);
        self.record(start.elapsed(), rows, QueryKind::Select);
        result
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        let start = Instant::now();
        let result = self.replica.ask(query);
        self.record(start.elapsed(), None, QueryKind::Ask);
        result
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        let start = Instant::now();
        let hits = self.replica.keyword_search(keyword, exact);
        self.record(start.elapsed(), None, QueryKind::Keyword);
        hits
    }

    fn graph(&self) -> &Graph {
        self.replica.graph()
    }

    /// Gather-level statistics: one `select` per logical query with the
    /// scatter's wall time, *not* the sum over shards (use
    /// [`ShardedEndpoint::shard_stats`] / [`ShardedEndpoint::replica_stats`]
    /// for per-backend accounting — `EndpointStats::merge` folds them).
    fn stats(&self) -> EndpointStats {
        *lock_or_recover("sparql.sharded.stats", &self.stats)
    }

    fn reset_stats(&self) {
        *lock_or_recover("sparql.sharded.stats", &self.stats) = EndpointStats::default();
        for shard in &self.shards {
            shard.reset_stats();
        }
        self.replica.reset_stats();
    }
}

// ---- merge layer ----------------------------------------------------------

struct ScatterPlan {
    shard_query: Query,
    merge: MergeSpec,
}

enum MergeSpec {
    Rows { distinct: bool },
    Groups(GroupMerge),
}

/// Indexes into [`GroupMerge::aggs`] / key columns for one output column.
enum OutputCol {
    Key(usize),
    Agg(usize),
}

/// How one original aggregate recombines from shard partial columns.
struct AggRecipe {
    func: AggFunc,
    /// Index into the partial columns (after the key columns).
    partial_a: usize,
    /// Second partial (COUNT_NUMERIC) for AVG; equals `partial_a` otherwise.
    partial_b: usize,
}

struct GroupMerge {
    key_len: usize,
    group_by: Vec<String>,
    /// Distinct original aggregates, from projection and HAVING.
    aggs: Vec<(AggFunc, Expr)>,
    recipes: Vec<AggRecipe>,
    outputs: Vec<OutputCol>,
    names: Vec<String>,
    having: Option<Expr>,
    distinct: bool,
}

fn position_or_push<T: PartialEq>(list: &mut Vec<T>, item: T) -> usize {
    match list.iter().position(|x| *x == item) {
        Some(i) => i,
        None => {
            list.push(item);
            list.len() - 1
        }
    }
}

/// Collects every `Expr::Agg` node (HAVING can nest them arbitrarily).
fn collect_aggregates(expr: &Expr, out: &mut Vec<(AggFunc, Expr)>) {
    match expr {
        Expr::Agg(func, inner) => out.push((*func, (**inner).clone())),
        Expr::Not(e) => collect_aggregates(e, out),
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_aggregates(a, out);
            collect_aggregates(b, out);
        }
        Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) => {
            collect_aggregates(a, out);
            collect_aggregates(b, out);
        }
        Expr::In(e, list) => {
            collect_aggregates(e, out);
            for item in list {
                collect_aggregates(item, out);
            }
        }
        Expr::Call(_, args) => {
            for arg in args {
                collect_aggregates(arg, out);
            }
        }
        Expr::Var(_) | Expr::Iri(_) | Expr::Literal(_) | Expr::Number(_) | Expr::Bool(_) => {}
    }
}

/// The projection the local evaluator would use for this query.
fn effective_items(query: &Query) -> Vec<SelectItem> {
    if query.select.is_empty() && query.is_aggregate() {
        query
            .group_by
            .iter()
            .map(|v| SelectItem::Var(v.clone()))
            .collect()
    } else {
        query.select.clone()
    }
}

fn merge_rows(shard_results: Vec<Solutions>, distinct: bool) -> Solutions {
    let mut iter = shard_results.into_iter();
    let Some(mut merged) = iter.next() else {
        return Solutions::default();
    };
    for part in iter {
        merged.rows.extend(part.rows);
    }
    if distinct {
        let mut seen: re2x_rdf::hash::FxHashSet<Vec<DedupKey>> = Default::default();
        merged.rows.retain(|row| {
            let key: Vec<DedupKey> = row.iter().map(DedupKey::of).collect();
            seen.insert(key)
        });
    }
    merged
}

/// One merged group: the representative key cells plus every shard's
/// partial-aggregate row for that key.
type GroupAcc = (Vec<Option<Value>>, Vec<Vec<Option<Value>>>);

fn merge_groups(shard_results: Vec<Solutions>, spec: &GroupMerge, graph: &Graph) -> Solutions {
    // Gather the partial rows of each group key across shards.
    let mut groups: FxHashMap<Vec<DedupKey>, GroupAcc> = FxHashMap::default();
    let mut group_order: Vec<Vec<DedupKey>> = Vec::new();
    for part in shard_results {
        for row in part.rows {
            let key_cells = row[..spec.key_len].to_vec();
            let key: Vec<DedupKey> = key_cells.iter().map(DedupKey::of).collect();
            groups
                .entry(key.clone())
                .or_insert_with(|| {
                    group_order.push(key);
                    (key_cells, Vec::new())
                })
                .1
                .push(row[spec.key_len..].to_vec());
        }
    }
    // An aggregate without GROUP BY has exactly one (implicit) group; every
    // shard reported one partial row, merged above into one group.
    let mut out_rows: Vec<Vec<Option<Value>>> = Vec::new();
    for key in &group_order {
        let (key_cells, partial_rows) = &groups[key];
        let merged_aggs: Vec<Option<Value>> = spec
            .recipes
            .iter()
            .map(|recipe| merge_one_aggregate(recipe, partial_rows))
            .collect();
        if let Some(having) = &spec.having {
            let ctx = MergedGroupContext {
                graph,
                group_by: &spec.group_by,
                key: key_cells,
                aggs: &spec.aggs,
                values: &merged_aggs,
            };
            let keep = eval_expr(having, &ctx, &())
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            if !keep {
                continue;
            }
        }
        let row: Vec<Option<Value>> = spec
            .outputs
            .iter()
            .map(|col| match col {
                OutputCol::Key(i) => key_cells[*i].clone(),
                OutputCol::Agg(i) => merged_aggs[*i].clone(),
            })
            .collect();
        out_rows.push(row);
    }
    let mut merged = Solutions {
        vars: spec.names.clone(),
        rows: out_rows,
    };
    if spec.distinct {
        let mut seen: re2x_rdf::hash::FxHashSet<Vec<DedupKey>> = Default::default();
        merged.rows.retain(|row| {
            let key: Vec<DedupKey> = row.iter().map(DedupKey::of).collect();
            seen.insert(key)
        });
    }
    merged
}

fn merge_one_aggregate(recipe: &AggRecipe, partial_rows: &[Vec<Option<Value>>]) -> Option<Value> {
    let number = |row: &[Option<Value>], col: usize| -> Option<f64> {
        match row.get(col) {
            Some(Some(Value::Number(n))) => Some(*n),
            _ => None,
        }
    };
    match recipe.func {
        AggFunc::Sum => {
            let mut total = 0.0;
            let mut any = false;
            for row in partial_rows {
                if let Some(n) = number(row, recipe.partial_a) {
                    total += n;
                    any = true;
                }
            }
            any.then_some(Value::Number(total))
        }
        AggFunc::Count | AggFunc::CountNumeric => {
            let total: f64 = partial_rows
                .iter()
                .filter_map(|row| number(row, recipe.partial_a))
                .sum();
            Some(Value::Number(total))
        }
        AggFunc::Min => partial_rows
            .iter()
            .filter_map(|row| number(row, recipe.partial_a))
            .reduce(f64::min)
            .map(Value::Number),
        AggFunc::Max => partial_rows
            .iter()
            .filter_map(|row| number(row, recipe.partial_a))
            .reduce(f64::max)
            .map(Value::Number),
        AggFunc::Avg => {
            let sum: f64 = partial_rows
                .iter()
                .filter_map(|row| number(row, recipe.partial_a))
                .sum();
            let count: f64 = partial_rows
                .iter()
                .filter_map(|row| number(row, recipe.partial_b))
                .sum();
            (count > 0.0).then_some(Value::Number(sum / count))
        }
        AggFunc::CountDistinct => unreachable!("COUNT(DISTINCT) never scatters"),
    }
}

/// HAVING evaluation context over one *merged* group: group variables
/// resolve from the merged key cells, aggregate calls from the merged
/// aggregate values (matched structurally, exactly as they were collected).
struct MergedGroupContext<'a> {
    graph: &'a Graph,
    group_by: &'a [String],
    key: &'a [Option<Value>],
    aggs: &'a [(AggFunc, Expr)],
    values: &'a [Option<Value>],
}

impl EvalContext for MergedGroupContext<'_> {
    type Row = ();

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn lookup(&self, name: &str, _row: &()) -> Option<Value> {
        let pos = self.group_by.iter().position(|g| g == name)?;
        self.key.get(pos).cloned().flatten()
    }

    fn aggregate(&self, func: AggFunc, expr: &Expr, _row: &()) -> Option<Value> {
        let pos = self
            .aggs
            .iter()
            .position(|(f, e)| *f == func && e == expr)?;
        self.values.get(pos).cloned().flatten()
    }
}

// ---- canonical ordering ---------------------------------------------------

/// Sorts solutions into the canonical deterministic order the sharded merge
/// emits: the query's ORDER BY keys first (the exact local comparator —
/// unbound before bound, `DESC` reversed), then a structural whole-row
/// tiebreak that is total over every [`Value`] (including NaN, by bit
/// pattern). Exposed so differential tests and benchmarks can canonicalize
/// a [`LocalEndpoint`] result for comparison.
pub fn canonical_order(solutions: &mut Solutions, order_by: &[OrderKey], graph: &Graph) {
    let key_cols: Vec<(usize, Order)> = order_by
        .iter()
        .filter_map(|k| {
            solutions
                .vars
                .iter()
                .position(|v| *v == k.column)
                .map(|i| (i, k.order))
        })
        .collect();
    solutions.rows.sort_by(|a, b| {
        for &(col, order) in &key_cols {
            let ord = match (&a[col], &b[col]) {
                (Some(x), Some(y)) => x.compare(y, graph),
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            };
            let ord = if order == Order::Desc {
                ord.reverse()
            } else {
                ord
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        structural_row_cmp(a, b)
    });
}

fn structural_row_cmp(a: &[Option<Value>], b: &[Option<Value>]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = structural_cell_cmp(x, y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn structural_cell_cmp(a: &Option<Value>, b: &Option<Value>) -> Ordering {
    fn rank(cell: &Option<Value>) -> u8 {
        match cell {
            None => 0,
            Some(Value::Term(_)) => 1,
            Some(Value::Number(_)) => 2,
            Some(Value::Bool(_)) => 3,
            Some(Value::Str(_)) => 4,
        }
    }
    match (a, b) {
        (Some(Value::Term(x)), Some(Value::Term(y))) => x.cmp(y),
        (Some(Value::Number(x)), Some(Value::Number(y))) => {
            total_compare_numeric(*x, *y).then_with(|| x.to_bits().cmp(&y.to_bits()))
        }
        (Some(Value::Bool(x)), Some(Value::Bool(y))) => x.cmp(y),
        (Some(Value::Str(x)), Some(Value::Str(y))) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

/// The canonical reference a scattered query is differentially tested
/// against: local evaluation with LIMIT/OFFSET stripped, sorted by
/// [`canonical_order`], then OFFSET/LIMIT re-applied. For queries without
/// ties under ORDER BY (or without LIMIT at all) this is local evaluation
/// up to SPARQL's unspecified tie order; with ties it pins the same
/// deterministic total order the merge layer uses.
pub fn reference_solutions(
    endpoint: &dyn SparqlEndpoint,
    query: &Query,
) -> Result<Solutions, SparqlError> {
    let mut unlimited = query.clone();
    unlimited.limit = None;
    unlimited.offset = None;
    let mut solutions = endpoint.select(&unlimited)?;
    canonical_order(&mut solutions, &query.order_by, endpoint.graph());
    let offset = query.offset.unwrap_or(0);
    if offset > 0 {
        solutions.rows.drain(..offset.min(solutions.rows.len()));
    }
    if let Some(limit) = query.limit {
        solutions.rows.truncate(limit);
    }
    Ok(solutions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use re2x_rdf::io::parse_turtle;

    /// Asylum micro-cube with qb:Observation-typed facts, one replicated
    /// hierarchy hop (origin → continent) and an integer measure.
    fn fixture() -> Graph {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix qb: <http://purl.org/linked-data/cube#> .
            ex:Syria ex:inContinent ex:Asia ; ex:label "Syria" .
            ex:China ex:inContinent ex:Asia ; ex:label "China" .
            ex:Ukraine ex:inContinent ex:Europe ; ex:label "Ukraine" .
            ex:Asia ex:label "Asia" .
            ex:Europe ex:label "Europe" .
            ex:Germany ex:label "Germany" .
            ex:France ex:label "France" .

            ex:o1 a qb:Observation ; ex:dest ex:Germany ; ex:origin ex:Syria ;
                  ex:year 2013 ; ex:applicants 300 .
            ex:o2 a qb:Observation ; ex:dest ex:Germany ; ex:origin ex:Syria ;
                  ex:year 2014 ; ex:applicants 600 .
            ex:o3 a qb:Observation ; ex:dest ex:Germany ; ex:origin ex:China ;
                  ex:year 2014 ; ex:applicants 100 .
            ex:o4 a qb:Observation ; ex:dest ex:France ; ex:origin ex:Syria ;
                  ex:year 2014 ; ex:applicants 300 .
            ex:o5 a qb:Observation ; ex:dest ex:France ; ex:origin ex:Ukraine ;
                  ex:year 2014 ; ex:applicants 50 .
            "#,
            &mut g,
        )
        .expect("parse fixture");
        g
    }

    fn sharded(n: usize) -> ShardedEndpoint {
        ShardedEndpoint::new(fixture(), n)
    }

    fn q(text: &str) -> Query {
        parse_query(text).expect("parse")
    }

    fn assert_differential(text: &str, expect: Route) {
        let local = LocalEndpoint::new(fixture());
        for n in [1, 2, 3, 4, 8] {
            let endpoint = sharded(n);
            let query = q(text);
            assert_eq!(endpoint.route(&query), expect, "route of {text} at n={n}");
            match expect {
                Route::Scatter => {
                    let got = endpoint.select(&query).expect("sharded select");
                    let want = reference_solutions(&local, &query).expect("local select");
                    assert_eq!(got, want, "{text} at n={n}");
                }
                Route::Replica => {
                    assert_eq!(
                        endpoint.select(&query),
                        local.select(&query),
                        "{text} at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn group_by_sum_scatters_and_matches_local() {
        assert_differential(
            "SELECT ?d (SUM(?n) AS ?total) WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n
             } GROUP BY ?d ORDER BY DESC(?total)",
            Route::Scatter,
        );
    }

    #[test]
    fn avg_recombines_from_sum_and_count() {
        assert_differential(
            "SELECT ?d (AVG(?n) AS ?a) (COUNT(?o) AS ?c) WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n
             } GROUP BY ?d ORDER BY ?d",
            Route::Scatter,
        );
    }

    #[test]
    fn implicit_group_merges_to_one_row() {
        assert_differential(
            "SELECT (SUM(?n) AS ?total) (MIN(?n) AS ?lo) (MAX(?n) AS ?hi) (AVG(?n) AS ?mean)
             WHERE { ?o <http://ex/applicants> ?n }",
            Route::Scatter,
        );
    }

    #[test]
    fn rollup_path_through_replicated_hierarchy() {
        assert_differential(
            "SELECT ?cont (SUM(?n) AS ?total) WHERE {
                ?o <http://ex/origin> / <http://ex/inContinent> ?cont .
                ?o <http://ex/applicants> ?n
             } GROUP BY ?cont ORDER BY ?cont",
            Route::Scatter,
        );
    }

    #[test]
    fn having_filters_merged_groups() {
        assert_differential(
            "SELECT ?d (SUM(?n) AS ?total) WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n
             } GROUP BY ?d HAVING (SUM(?n) > 500) ORDER BY ?d",
            Route::Scatter,
        );
        // HAVING over an aggregate that is not projected.
        assert_differential(
            "SELECT ?d WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n
             } GROUP BY ?d HAVING (AVG(?n) >= 175) ORDER BY ?d",
            Route::Scatter,
        );
    }

    #[test]
    fn distinct_and_order_limit_merge() {
        assert_differential(
            "SELECT DISTINCT ?d WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/year> 2014 }
             ORDER BY ?d",
            Route::Scatter,
        );
        assert_differential(
            "SELECT ?o ?n WHERE { ?o <http://ex/applicants> ?n } ORDER BY DESC(?n) ?o LIMIT 3",
            Route::Scatter,
        );
    }

    #[test]
    fn class_probe_counts_observations_once() {
        assert_differential(
            "SELECT (COUNT(?o) AS ?c) WHERE {
                ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type>
                   <http://purl.org/linked-data/cube#Observation>
             }",
            Route::Scatter,
        );
    }

    #[test]
    fn unmergeable_shapes_fall_back_to_replica() {
        // Replicated-only pattern: every shard would return the full result.
        assert_differential(
            "SELECT ?m ?l WHERE { ?m <http://ex/label> ?l } ORDER BY ?l",
            Route::Replica,
        );
        // Predicate variable (schema discovery).
        assert_differential(
            "SELECT DISTINCT ?p WHERE { <http://ex/o1> ?p ?x }",
            Route::Replica,
        );
        // COUNT(DISTINCT …) is not partial-mergeable.
        assert_differential(
            "SELECT (COUNT(DISTINCT ?d) AS ?c) WHERE { ?o <http://ex/dest> ?d }",
            Route::Replica,
        );
        // Unordered LIMIT has no deterministic merge.
        assert_differential(
            "SELECT ?o WHERE { ?o <http://ex/dest> <http://ex/Germany> } LIMIT 2",
            Route::Replica,
        );
    }

    #[test]
    fn invalid_queries_reproduce_local_errors() {
        for text in [
            // Projected but neither grouped nor aggregated.
            "SELECT ?o ?d (SUM(?n) AS ?t) WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n } GROUP BY ?d",
            // GROUP BY variable not in WHERE.
            "SELECT (SUM(?n) AS ?t) WHERE { ?o <http://ex/applicants> ?n } GROUP BY ?zzz",
            // ORDER BY column not projected.
            "SELECT ?d WHERE { ?o <http://ex/dest> ?d } ORDER BY ?nope",
        ] {
            assert_differential(text, Route::Replica);
        }
    }

    #[test]
    fn ask_and_keyword_use_replica() {
        let endpoint = sharded(4);
        assert!(endpoint
            .ask(&q("ASK { ?o <http://ex/dest> <http://ex/Germany> }"))
            .unwrap());
        assert_eq!(endpoint.keyword_search("germany", true).len(), 1);
        let stats = endpoint.stats();
        assert_eq!((stats.asks, stats.keyword_searches), (1, 1));
    }

    #[test]
    fn gather_stats_count_logical_queries_not_shard_fanout() {
        let endpoint = sharded(4);
        let query = q("SELECT ?d (SUM(?n) AS ?t) WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n } GROUP BY ?d");
        let rows = endpoint.select(&query).unwrap().len() as u64;
        let stats = endpoint.stats();
        assert_eq!((stats.selects, stats.rows_returned), (1, rows));
        assert_eq!(endpoint.scatter_count(), 1);
        assert_eq!(endpoint.fallback_count(), 0);
        // Every shard saw exactly one scattered sub-query.
        let shard_selects: u64 = (0..endpoint.num_shards())
            .map(|i| endpoint.shard_stats(i).selects)
            .sum();
        assert_eq!(shard_selects, 4);
        assert_eq!(endpoint.replica_stats().selects, 0);

        endpoint.reset_stats();
        assert_eq!(endpoint.stats(), EndpointStats::default());
        assert_eq!(endpoint.shard_stats(0), EndpointStats::default());
    }

    #[test]
    fn per_shard_metrics_appear_in_prometheus_exposition() {
        let metrics = Arc::new(Metrics::new());
        let endpoint = sharded(2).with_metrics(Arc::clone(&metrics));
        endpoint
            .select(&q(
                "SELECT ?d (SUM(?n) AS ?t) WHERE {
                    ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n } GROUP BY ?d",
            ))
            .unwrap();
        let exposition = re2x_obs::prometheus_exposition(&metrics.snapshot(), &[]);
        for needle in [
            "shard_busy{shard=\"0\"}",
            "shard_busy{shard=\"1\"}",
            "shard_queries{shard=\"0\"}",
            "shard_rows{shard=\"1\"}",
            "shard_skew",
            "sharded_scatter_queries 1",
        ] {
            assert!(
                exposition.contains(needle),
                "missing {needle} in exposition:\n{exposition}"
            );
        }
    }

    #[test]
    fn composes_under_caching_and_tracing() {
        let cached = crate::CachingEndpoint::new(sharded(3));
        let query = q("SELECT ?d (AVG(?n) AS ?a) WHERE {
                ?o <http://ex/dest> ?d . ?o <http://ex/applicants> ?n } GROUP BY ?d ORDER BY ?d");
        let first = cached.select(&query).unwrap();
        let second = cached.select(&query).unwrap();
        assert_eq!(first, second);
        assert_eq!(cached.stats().cache_hits, 1);
    }

    #[test]
    fn injected_latencies_rebuild_all_backends() {
        let endpoint = sharded(2)
            .with_latency(Duration::from_millis(1))
            .with_row_latency(Duration::from_micros(10));
        let query = q("SELECT ?o ?n WHERE { ?o <http://ex/applicants> ?n } ORDER BY ?o");
        let got = endpoint.select(&query).unwrap();
        let want = reference_solutions(&LocalEndpoint::new(fixture()), &query).unwrap();
        assert_eq!(got, want);
        assert!(endpoint.stats().busy >= Duration::from_millis(1));
    }
}
