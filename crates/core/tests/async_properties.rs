//! Property suite: across randomized datasets, scales, pool widths, and
//! examples, the async fan-out paths (bootstrap crawl, ReOLAP candidate
//! validation, refinement preview) must be byte-identical to their serial
//! equivalents. Per-case seeds come from the testkit harness
//! (`RE2X_TEST_SEED` / `RE2X_TEST_CASES` reproduce a failure exactly).

use re2x_cube::{bootstrap, bootstrap_async, BootstrapConfig};
use re2x_sparql::LocalEndpoint;
use re2x_testkit::{check_n, TestRng};
use re2xolap::{reolap, RefineOp, ReolapConfig, Session, SessionConfig};

#[test]
fn async_pipeline_is_differentially_identical_to_serial() {
    // each case bootstraps a dataset twice; keep the budget small
    check_n("async_pipeline_differential", 6, |rng: &mut TestRng| {
        let data_seed = rng.next_u64();
        let observations = rng.gen_range(150usize..400);
        let workers = rng.gen_range(1usize..9);
        let (dataset, example): (re2x_datagen::Dataset, &[&str]) = match rng.gen_range(0usize..3) {
            0 => (
                re2x_datagen::eurostat::generate(observations, data_seed),
                &["Germany", "2014"],
            ),
            1 => (
                re2x_datagen::eurostat::generate(observations, data_seed),
                &["Sweden"],
            ),
            _ => (
                re2x_datagen::dbpedia::generate(observations, data_seed),
                &["2014"],
            ),
        };
        let endpoint = LocalEndpoint::new(dataset.graph);
        let config = BootstrapConfig::new(dataset.observation_class);

        // 1. bootstrap: identical Virtual Schema Graph
        let serial = bootstrap(&endpoint, &config).expect("serial bootstrap");
        let crawled = bootstrap_async(&endpoint, &config, workers).expect("async bootstrap");
        assert_eq!(
            crawled.schema, serial.schema,
            "async VSG diverged (seed {data_seed}, {observations} obs, {workers} workers)"
        );
        assert_eq!(crawled.endpoint_queries, serial.endpoint_queries);

        // 2. synthesis: identical candidate sets under batched validation
        let serial_outcome = reolap(&endpoint, &serial.schema, example, &ReolapConfig::default());
        let async_outcome = reolap(
            &endpoint,
            &serial.schema,
            example,
            &ReolapConfig {
                validation_workers: workers,
                ..Default::default()
            },
        );
        let (serial_outcome, async_outcome) = match (serial_outcome, async_outcome) {
            (Ok(s), Ok(a)) => (s, a),
            // sparse random datasets may not contain the example at all —
            // both paths must then fail identically
            (Err(s), Err(a)) => {
                assert_eq!(s, a, "error paths diverged (seed {data_seed})");
                return;
            }
            (s, a) => panic!("one path errored, the other did not: {s:?} vs {a:?}"),
        };
        assert_eq!(
            async_outcome.queries, serial_outcome.queries,
            "candidate sets diverged (seed {data_seed}, {workers} workers)"
        );

        // 3. refinement preview: identical result sets
        if serial_outcome.queries.is_empty() {
            return;
        }
        let mut session = Session::new(&endpoint, &serial.schema, SessionConfig::default());
        session
            .choose(serial_outcome.queries[0].clone())
            .expect("query runs");
        let op = *rng.pick(&[RefineOp::Disaggregate, RefineOp::TopK, RefineOp::Similarity]);
        let refinements = session.refinements(op).expect("refinements");
        if refinements.is_empty() {
            return;
        }
        let serial_previews = session.preview(&refinements, 0).expect("serial preview");
        let async_previews = session
            .preview(&refinements, workers)
            .expect("async preview");
        assert_eq!(
            async_previews, serial_previews,
            "preview result sets diverged (seed {data_seed}, {op:?}, {workers} workers)"
        );
    });
}
