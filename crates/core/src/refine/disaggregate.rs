//! Example-driven Disaggregate (Problem 2a, Section 6.1) — the drill-down.
//!
//! Enumerates every hierarchy level reachable from the observation root of
//! the Virtual Schema Graph that is not yet part of the query and would not
//! *aggregate at a higher level instead of disaggregating*. The operation
//! touches only the in-memory virtual graph — no triplestore queries — so
//! it runs in `O(|L̄|)`.

use crate::query_model::{level_var_name, GroupColumn, OlapQuery};
use crate::refine::{Refinement, RefinementKind};
use re2x_cube::{patterns, VirtualSchemaGraph};
use re2x_sparql::SelectItem;

/// All valid disaggregation refinements of `query`.
pub fn disaggregate(schema: &VirtualSchemaGraph, query: &OlapQuery) -> Vec<Refinement> {
    let mut out = Vec::new();
    for level in schema.levels() {
        // already grouped at this level
        if query.groups_level(level.id) {
            continue;
        }
        // would roll *up*: the candidate aggregates an included level of
        // the same hierarchy at a coarser granularity (its path extends an
        // included level's path)
        let rolls_up = query.group_columns.iter().any(|c| {
            let included = schema.level(c.level);
            included.is_ancestor_of(level)
        });
        if rolls_up {
            continue;
        }
        out.push(apply(schema, query, level.id));
    }
    out
}

/// Builds the refined query that additionally groups by `level`.
pub fn apply(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    level: re2x_cube::LevelId,
) -> Refinement {
    let mut refined = query.clone();
    // Measure thresholds from earlier dice steps (Top-k / Percentile
    // HAVING clauses) were computed at the *current* aggregation
    // granularity; after adding a dimension the groups — and hence their
    // aggregate values — change, and stale thresholds can exclude every
    // example row. Drill-down therefore resets them. Dimension-value
    // filters (similarity pins, negative examples) stay: they constrain
    // members, not aggregates, and remain valid at any granularity.
    let dropped_thresholds = refined.query.having.take().is_some();
    let var = level_var_name(schema, level);
    let node = schema.level(level);
    // pattern: ?o <path…> ?var — inserted before the measure patterns is
    // not required for correctness (BGP order is irrelevant), append.
    refined
        .query
        .wher
        .push(patterns::path_to_member("o", &node.path, &var));
    // project the new variable before the aggregate columns
    let insert_at = refined.group_columns.len();
    refined
        .query
        .select
        .insert(insert_at, SelectItem::Var(var.clone()));
    refined.query.group_by.push(var.clone());
    refined.group_columns.push(GroupColumn {
        var: var.clone(),
        level,
    });
    let display = OlapQuery::level_display(schema, level);
    refined.description = format!("{} — disaggregated by \"{display}\"", query.description);
    let mut explanation = format!("Break down the current results by \"{display}\"");
    if dropped_thresholds {
        explanation.push_str(
            " (measure thresholds from earlier subset steps are reset at the new granularity)",
        );
    }
    Refinement {
        query: refined,
        kind: RefinementKind::Disaggregate { level },
        explanation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_model::ExampleBinding;
    use crate::reolap::get_query;
    use re2x_cube::{LevelId, VirtualSchemaGraph};
    use re2x_sparql::AggFunc;

    /// Schema: origin (country→continent), dest (country), year.
    fn schema() -> (VirtualSchemaGraph, LevelId, LevelId, LevelId, LevelId) {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        let origin = v.add_dimension("http://ex/origin", "Country of Origin");
        let dest = v.add_dimension("http://ex/dest", "Country of Destination");
        let year = v.add_dimension("http://ex/year", "Year");
        v.add_measure("http://ex/applicants", "Num Applicants");
        let origin_country = v.add_level(
            origin,
            vec!["http://ex/origin".into()],
            10,
            vec![],
            "Country",
        );
        let origin_continent = v.add_level(
            origin,
            vec!["http://ex/origin".into(), "http://ex/inContinent".into()],
            3,
            vec![],
            "Continent",
        );
        let dest_country = v.add_level(dest, vec!["http://ex/dest".into()], 5, vec![], "Country");
        let year_level = v.add_level(year, vec!["http://ex/year".into()], 8, vec![], "Year");
        (
            v,
            origin_country,
            origin_continent,
            dest_country,
            year_level,
        )
    }

    fn query_at(schema: &VirtualSchemaGraph, level: LevelId) -> OlapQuery {
        get_query(
            schema,
            &[ExampleBinding {
                keyword: "x".into(),
                member_iri: "http://ex/X".into(),
                label: "X".into(),
                level,
            }],
            &[AggFunc::Sum],
        )
    }

    #[test]
    fn offers_all_levels_not_in_query_minus_rollups() {
        let (v, origin_country, _origin_continent, dest_country, year_level) = schema();
        let q = query_at(&v, origin_country);
        let refinements = disaggregate(&v, &q);
        let levels: Vec<LevelId> = refinements
            .iter()
            .map(|r| match r.kind {
                RefinementKind::Disaggregate { level } => level,
                _ => unreachable!(),
            })
            .collect();
        // origin_continent is a roll-up of origin_country → excluded;
        // dest_country and year remain.
        assert_eq!(levels, vec![dest_country, year_level]);
    }

    #[test]
    fn drill_down_within_dimension_is_offered_from_coarse_levels() {
        let (v, origin_country, origin_continent, dest_country, year_level) = schema();
        let q = query_at(&v, origin_continent);
        let refinements = disaggregate(&v, &q);
        let levels: Vec<LevelId> = refinements
            .iter()
            .map(|r| match r.kind {
                RefinementKind::Disaggregate { level } => level,
                _ => unreachable!(),
            })
            .collect();
        // country is finer than continent → allowed (drill-down within the
        // dimension), plus the two other dimensions.
        assert_eq!(levels, vec![origin_country, dest_country, year_level]);
    }

    #[test]
    fn applied_refinement_extends_projection_and_grouping() {
        let (v, origin_country, _, dest_country, _) = schema();
        let q = query_at(&v, origin_country);
        let refined = apply(&v, &q, dest_country);
        let rq = &refined.query;
        assert_eq!(rq.group_columns.len(), 2);
        assert_eq!(rq.query.group_by, vec!["origin", "dest"]);
        // projection order: group vars first, then aggregates
        let names: Vec<&str> = rq.query.select.iter().map(|i| i.name()).collect();
        assert_eq!(names, vec!["origin", "dest", "sum_applicants"]);
        assert!(refined.explanation.contains("Country of Destination"));
        // example bindings carried over
        assert_eq!(rq.example, q.example);
    }

    #[test]
    fn second_disaggregation_excludes_first() {
        let (v, origin_country, _, dest_country, year_level) = schema();
        let q = query_at(&v, origin_country);
        let once = apply(&v, &q, dest_country).query;
        let again = disaggregate(&v, &once);
        let levels: Vec<LevelId> = again
            .iter()
            .map(|r| match r.kind {
                RefinementKind::Disaggregate { level } => level,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(levels, vec![year_level]);
    }

    #[test]
    fn drill_down_resets_measure_thresholds() {
        let (v, origin_country, _, dest_country, _) = schema();
        let mut q = query_at(&v, origin_country);
        q.query.having = Some(re2x_sparql::Expr::cmp(
            re2x_sparql::Expr::Agg(AggFunc::Sum, Box::new(re2x_sparql::Expr::var("m0"))),
            re2x_sparql::CmpOp::Gt,
            re2x_sparql::Expr::Number(100.0),
        ));
        let refined = apply(&v, &q, dest_country);
        assert!(
            refined.query.query.having.is_none(),
            "stale threshold dropped"
        );
        assert!(refined.explanation.contains("reset at the new granularity"));
        // without a HAVING, no note is added
        let plain = apply(&v, &query_at(&v, origin_country), dest_country);
        assert!(!plain.explanation.contains("reset"));
    }

    #[test]
    fn fully_disaggregated_query_offers_nothing() {
        let (v, origin_country, _, dest_country, year_level) = schema();
        let mut q = query_at(&v, origin_country);
        q = apply(&v, &q, dest_country).query;
        q = apply(&v, &q, year_level).query;
        assert!(disaggregate(&v, &q).is_empty());
    }
}
