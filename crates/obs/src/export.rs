//! Exporters: JSONL event log, Prometheus-style text exposition, and a
//! flamegraph-style self-time tree.
//!
//! All output is produced by hand (the workspace is hermetic — no serde);
//! the JSON subset emitted here is deliberately tiny: objects with string,
//! integer, and float values only.

use crate::bus::BusEvent;
use crate::hist::LatencyHistogram;
use crate::metrics::MetricsSnapshot;
use crate::tracer::{PhaseQueryStats, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Escapes a string for inclusion inside a JSON string literal (without
/// the surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a string for use as a Prometheus exposition label *value*
/// (inside the surrounding quotes). The exposition format escapes exactly
/// three characters: backslash, double quote, and line feed — applying
/// JSON escaping here would corrupt values containing tabs or carriage
/// returns, and applying nothing (the old behaviour) produced malformed
/// exposition for values containing `"` or `\`.
pub fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fields_to_json(fields: &[(String, String)]) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Renders one trace event as a single-line JSON object.
pub fn event_to_json(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Enter {
            span,
            parent,
            path,
            name,
            thread,
            at,
            fields,
        } => {
            let parent = match parent {
                Some(p) => p.to_string(),
                None => "null".to_owned(),
            };
            format!(
                "{{\"type\":\"enter\",\"span\":{span},\"parent\":{parent},\
                 \"path\":\"{}\",\"name\":\"{}\",\"thread\":{thread},\
                 \"at_us\":{},\"fields\":{}}}",
                json_escape(path),
                json_escape(name),
                at.as_micros(),
                fields_to_json(fields),
            )
        }
        TraceEvent::Exit {
            span,
            path,
            thread,
            at,
            wall,
            self_time,
        } => format!(
            "{{\"type\":\"exit\",\"span\":{span},\"path\":\"{}\",\
             \"thread\":{thread},\"at_us\":{},\"wall_us\":{},\"self_us\":{}}}",
            json_escape(path),
            at.as_micros(),
            wall.as_micros(),
            self_time.as_micros(),
        ),
        TraceEvent::Query {
            path,
            kind,
            thread,
            at,
            latency,
        } => format!(
            "{{\"type\":\"query\",\"path\":\"{}\",\"kind\":\"{}\",\
             \"thread\":{thread},\"at_us\":{},\"latency_us\":{}}}",
            json_escape(path),
            kind.as_str(),
            at.as_micros(),
            latency.as_micros(),
        ),
        TraceEvent::Cache {
            path,
            hit,
            thread,
            at,
        } => format!(
            "{{\"type\":\"cache\",\"path\":\"{}\",\"hit\":{hit},\
             \"thread\":{thread},\"at_us\":{}}}",
            json_escape(path),
            at.as_micros(),
        ),
    }
}

/// Renders one bus event as a single-line JSON object. Trace events use
/// the [`event_to_json`] encoding; metric deltas get their own `type`s.
pub fn bus_event_to_json(event: &BusEvent) -> String {
    match event {
        BusEvent::Trace(e) => event_to_json(e),
        BusEvent::Counter { name, delta, at } => format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta},\"at_us\":{}}}",
            json_escape(name),
            at.as_micros(),
        ),
        BusEvent::Gauge { name, value, at } => format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value},\"at_us\":{}}}",
            json_escape(name),
            at.as_micros(),
        ),
        BusEvent::Observe { name, latency, at } => format!(
            "{{\"type\":\"observe\",\"name\":\"{}\",\"latency_us\":{},\"at_us\":{}}}",
            json_escape(name),
            latency.as_micros(),
            at.as_micros(),
        ),
    }
}

/// Renders a bus event log as JSONL — the `repro watch` recording format.
pub fn bus_events_to_jsonl(events: &[BusEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&bus_event_to_json(event));
        out.push('\n');
    }
    out
}

/// Renders an event log as JSONL (one JSON object per line, trailing
/// newline included when non-empty).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_to_json(event));
        out.push('\n');
    }
    out
}

fn prom_name(name: &str) -> String {
    // Prometheus metric names allow [a-zA-Z0-9_:]; labels in braces pass
    // through untouched.
    match name.find('{') {
        Some(i) => {
            let (base, labels) = name.split_at(i);
            format!("{}{}", sanitize(base), labels)
        }
        None => sanitize(name),
    }
}

fn sanitize(base: &str) -> String {
    base.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_histogram(out: &mut String, name: &str, hist: &LatencyHistogram, sum: Duration) {
    // A labeled registration (`serve_round_latency{tenant="t0"}`) must fold
    // its labels into each series — `base{tenant}_bucket{le}` would be
    // malformed exposition, so emit `base_bucket{tenant,le}` instead.
    let (base, labels) = match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    };
    let with = |extra: &str| -> String {
        match (labels.is_empty(), extra.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("{{{extra}}}"),
            (false, true) => format!("{{{labels}}}"),
            (false, false) => format!("{{{labels},{extra}}}"),
        }
    };
    let mut cumulative = 0u64;
    for (bound, count) in hist.buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "{base}_bucket{} {cumulative}",
            with(&format!("le=\"{}\"", bound.as_secs_f64()))
        );
    }
    let _ = writeln!(out, "{base}_bucket{} {}", with("le=\"+Inf\""), hist.count());
    let _ = writeln!(out, "{base}_sum{} {}", with(""), sum.as_secs_f64());
    let _ = writeln!(out, "{base}_count{} {}", with(""), hist.count());
}

/// Renders a metrics snapshot plus the query-provenance table as a
/// Prometheus-style text exposition.
pub fn prometheus_exposition(
    metrics: &MetricsSnapshot,
    provenance: &[(String, PhaseQueryStats)],
) -> String {
    let mut out = String::new();
    for (name, value) in &metrics.counters {
        let _ = writeln!(
            out,
            "# TYPE {} counter",
            prom_name(name).split('{').next().unwrap_or("")
        );
        let _ = writeln!(out, "{} {value}", prom_name(name));
    }
    for (name, value) in &metrics.gauges {
        let _ = writeln!(
            out,
            "# TYPE {} gauge",
            prom_name(name).split('{').next().unwrap_or("")
        );
        let _ = writeln!(out, "{} {value}", prom_name(name));
    }
    for (name, snap) in &metrics.histograms {
        let base = prom_name(name);
        let _ = writeln!(
            out,
            "# TYPE {} histogram",
            base.split('{').next().unwrap_or("")
        );
        prom_histogram(&mut out, &base, &snap.histogram, snap.sum);
    }
    if !provenance.is_empty() {
        let _ = writeln!(out, "# TYPE re2x_phase_queries counter");
        for (path, stats) in provenance {
            let phase = prom_escape(path);
            let _ = writeln!(
                out,
                "re2x_phase_queries{{phase=\"{phase}\",kind=\"select\"}} {}",
                stats.selects
            );
            let _ = writeln!(
                out,
                "re2x_phase_queries{{phase=\"{phase}\",kind=\"ask\"}} {}",
                stats.asks
            );
            let _ = writeln!(
                out,
                "re2x_phase_queries{{phase=\"{phase}\",kind=\"keyword\"}} {}",
                stats.keyword_searches
            );
        }
        let _ = writeln!(out, "# TYPE re2x_phase_busy_seconds counter");
        for (path, stats) in provenance {
            let _ = writeln!(
                out,
                "re2x_phase_busy_seconds{{phase=\"{}\"}} {}",
                prom_escape(path),
                stats.busy.as_secs_f64()
            );
        }
        let _ = writeln!(out, "# TYPE re2x_phase_cache_events counter");
        for (path, stats) in provenance {
            if stats.cache_hits + stats.cache_misses == 0 {
                continue;
            }
            let phase = prom_escape(path);
            let _ = writeln!(
                out,
                "re2x_phase_cache_events{{phase=\"{phase}\",outcome=\"hit\"}} {}",
                stats.cache_hits
            );
            let _ = writeln!(
                out,
                "re2x_phase_cache_events{{phase=\"{phase}\",outcome=\"miss\"}} {}",
                stats.cache_misses
            );
        }
    }
    out
}

/// Aggregate cost of one span *path* (all spans sharing that path folded
/// together), produced by [`aggregate_spans`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Full `/`-joined path.
    pub path: String,
    /// Number of spans with this path.
    pub count: u64,
    /// Summed wall time.
    pub wall: Duration,
    /// Summed self time (wall minus same-thread children).
    pub self_time: Duration,
}

/// Folds an event log into per-path aggregates, sorted by path. Because
/// paths are `/`-joined, lexicographic order lists every parent directly
/// before its children — the tree shape falls out of a flat sort.
pub fn aggregate_spans(events: &[TraceEvent]) -> Vec<SpanAgg> {
    let mut by_path: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for event in events {
        if let TraceEvent::Exit {
            path,
            wall,
            self_time,
            ..
        } = event
        {
            let agg = by_path.entry(path).or_insert_with(|| SpanAgg {
                path: path.clone(),
                ..SpanAgg::default()
            });
            agg.count += 1;
            agg.wall += *wall;
            agg.self_time += *self_time;
        }
    }
    by_path.into_values().collect()
}

/// Formats a duration compactly for human-readable reports.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Renders the span aggregates as an indented flamegraph-style tree:
/// one line per path, indented by depth, with count, wall, and self time.
/// Self-time percentages are relative to the total wall time of the root
/// spans.
pub fn render_self_time_tree(events: &[TraceEvent]) -> String {
    render_self_time_tree_from(&aggregate_spans(events))
}

/// [`render_self_time_tree`] over pre-folded aggregates (sorted by path),
/// for consumers that maintain aggregates incrementally — the live
/// dashboard folds bus events into its own `SpanAgg` map and renders from
/// there without keeping the whole event log.
pub fn render_self_time_tree_from(aggs: &[SpanAgg]) -> String {
    let root_wall: Duration = aggs
        .iter()
        .filter(|a| !a.path.contains('/'))
        .map(|a| a.wall)
        .sum();
    let mut out = String::new();
    for agg in aggs {
        let depth = agg.path.matches('/').count();
        let name = agg.path.rsplit('/').next().unwrap_or(&agg.path);
        let pct = if root_wall > Duration::ZERO {
            100.0 * agg.self_time.as_secs_f64() / root_wall.as_secs_f64()
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{}{} ×{}  wall {}  self {} ({:.1}%)",
            "  ".repeat(depth),
            name,
            agg.count,
            fmt_duration(agg.wall),
            fmt_duration(agg.self_time),
            pct,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::tracer::{QueryKind, Tracer};

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prom_escape_covers_exactly_the_exposition_specials() {
        assert_eq!(prom_escape("plain"), "plain");
        assert_eq!(prom_escape("a\"b"), "a\\\"b");
        assert_eq!(prom_escape("a\\b"), "a\\\\b");
        assert_eq!(prom_escape("a\nb"), "a\\nb");
        // unlike JSON escaping, tabs and control chars pass through
        assert_eq!(prom_escape("a\tb"), "a\tb");
    }

    #[test]
    fn quoted_tenant_id_yields_wellformed_exposition_labels() {
        // regression: a label value containing a quote used to be
        // interpolated raw (phase labels) or JSON-escaped (tabs became
        // \t, which the exposition format does not define)
        let metrics = Metrics::new();
        let name = crate::metrics::label("serve.sessions", &[("tenant", "ten\"ant\\x")]);
        metrics.counter_add(&name, 1);
        let stats = PhaseQueryStats {
            selects: 1,
            ..Default::default()
        };
        let text = prometheus_exposition(&metrics.snapshot(), &[("phase\"q".to_owned(), stats)]);
        assert!(
            text.contains("serve_sessions{tenant=\"ten\\\"ant\\\\x\"} 1"),
            "label builder escapes quotes and backslashes: {text}"
        );
        assert!(
            text.contains("re2x_phase_queries{phase=\"phase\\\"q\",kind=\"select\"} 1"),
            "provenance phase labels escape quotes: {text}"
        );
    }

    #[test]
    fn cache_events_serialize_and_bus_events_round_out_the_jsonl() {
        let tracer = Tracer::enabled();
        tracer.record_cache(true);
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        let json = event_to_json(&events[0]);
        assert!(json.contains("\"type\":\"cache\""));
        assert!(json.contains("\"hit\":true"));

        let bus_events = vec![
            BusEvent::Trace(events[0].clone()),
            BusEvent::Counter {
                name: "c".to_owned(),
                delta: 2,
                at: Duration::from_micros(10),
            },
            BusEvent::Gauge {
                name: "g".to_owned(),
                value: 1.5,
                at: Duration::from_micros(11),
            },
            BusEvent::Observe {
                name: "h".to_owned(),
                latency: Duration::from_micros(7),
                at: Duration::from_micros(12),
            },
        ];
        let jsonl = bus_events_to_jsonl(&bus_events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"cache\""));
        assert!(lines[1].contains("\"type\":\"counter\""));
        assert!(lines[1].contains("\"delta\":2"));
        assert!(lines[2].contains("\"type\":\"gauge\""));
        assert!(lines[2].contains("\"value\":1.5"));
        assert!(lines[3].contains("\"type\":\"observe\""));
        assert!(lines[3].contains("\"latency_us\":7"));
    }

    #[test]
    fn events_serialize_to_one_json_object_per_line() {
        let tracer = Tracer::enabled();
        {
            let _a = tracer.span_with("phase", &[("dim", "birthPlace")]);
            tracer.record_query(QueryKind::Select, Duration::from_micros(7));
        }
        let jsonl = events_to_jsonl(&tracer.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"enter\""));
        assert!(lines[0].contains("\"fields\":{\"dim\":\"birthPlace\"}"));
        assert!(lines[1].contains("\"type\":\"query\""));
        assert!(lines[1].contains("\"kind\":\"select\""));
        assert!(lines[1].contains("\"latency_us\":7"));
        assert!(lines[2].contains("\"type\":\"exit\""));
        assert!(lines[2].contains("\"wall_us\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn prometheus_exposition_covers_all_metric_kinds() {
        let metrics = Metrics::new();
        metrics.counter_add("bootstrap.dimensions", 4);
        metrics.gauge_set("cube.cells", 128.0);
        metrics.observe("endpoint.latency", Duration::from_micros(3));
        let stats = PhaseQueryStats {
            selects: 2,
            cache_hits: 1,
            busy: Duration::from_micros(10),
            ..Default::default()
        };
        let text = prometheus_exposition(&metrics.snapshot(), &[("bootstrap".to_owned(), stats)]);
        assert!(text.contains("bootstrap_dimensions 4"));
        assert!(text.contains("cube_cells 128"));
        assert!(text.contains("endpoint_latency_count 1"));
        assert!(text.contains("endpoint_latency_sum"));
        assert!(text.contains("re2x_phase_queries{phase=\"bootstrap\",kind=\"select\"} 2"));
        assert!(text.contains("re2x_phase_cache_events{phase=\"bootstrap\",outcome=\"hit\"} 1"));
        assert!(text.contains("re2x_phase_busy_seconds{phase=\"bootstrap\"} 0.00001"));
    }

    #[test]
    fn labeled_histograms_fold_labels_into_each_series() {
        let metrics = Metrics::new();
        let name = crate::metrics::label("serve.round_latency", &[("tenant", "t0")]);
        metrics.observe(&name, Duration::from_micros(250));
        let text = prometheus_exposition(&metrics.snapshot(), &[]);
        // labels merge with `le` instead of producing `…{tenant}_bucket{le}`
        assert!(text.contains("serve_round_latency_bucket{tenant=\"t0\",le=\"+Inf\"} 1"));
        assert!(text.contains("serve_round_latency_sum{tenant=\"t0\"} 0.00025"));
        assert!(text.contains("serve_round_latency_count{tenant=\"t0\"} 1"));
        assert!(!text.contains("}_bucket"));
        assert!(!text.contains("}_sum"));
        assert!(!text.contains("}_count"));
    }

    #[test]
    fn aggregates_fold_spans_by_path_in_tree_order() {
        let tracer = Tracer::enabled();
        {
            let _root = tracer.span("root");
            for _ in 0..3 {
                let _c = tracer.span("child");
            }
        }
        let aggs = aggregate_spans(&tracer.events());
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].path, "root");
        assert_eq!(aggs[0].count, 1);
        assert_eq!(aggs[1].path, "root/child");
        assert_eq!(aggs[1].count, 3);
        assert!(aggs[1].wall <= aggs[0].wall);
    }

    #[test]
    fn self_time_tree_indents_by_depth() {
        let tracer = Tracer::enabled();
        {
            let _root = tracer.span("pipeline");
            let _child = tracer.span("bootstrap");
        }
        let tree = render_self_time_tree(&tracer.events());
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("pipeline ×1"));
        assert!(lines[1].starts_with("  bootstrap ×1"));
        assert!(lines[0].contains('%'));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(3_500)), "3.50ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_250)), "2.25s");
    }
}
