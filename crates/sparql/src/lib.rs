#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2x-sparql
//!
//! A SPARQL subset engine over [`re2x_rdf`] graphs, covering exactly the
//! query fragment RE²xOLAP produces and consumes:
//!
//! * `SELECT` / `ASK` forms,
//! * basic graph patterns with *sequence property paths* (`<p1> / <p2>`)
//!   and variable predicates (for schema discovery),
//! * `FILTER` expressions (logical, comparison, arithmetic, `IN`,
//!   `STR`/`LCASE`/`CONTAINS`/`BOUND`/`ABS`),
//! * `GROUP BY` with `SUM`/`MIN`/`MAX`/`AVG`/`COUNT` aggregates and
//!   `HAVING`,
//! * `DISTINCT`, `ORDER BY`, `LIMIT`, `OFFSET`.
//!
//! Evaluation uses greedy selectivity-based join ordering over the store's
//! SPO/POS/OSP indexes. The [`SparqlEndpoint`] trait is the seam between
//! RE²xOLAP and the store, mirroring the paper's "standard SPARQL
//! interfaces (with non-specialized RDF stores)" requirement; the bundled
//! [`LocalEndpoint`] adds query statistics and optional injected latency
//! for the endpoint-performance experiments.
//!
//! ```
//! use re2x_rdf::{Graph, io::parse_turtle};
//! use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
//!
//! let mut graph = Graph::new();
//! parse_turtle(r#"
//!     @prefix ex: <http://ex/> .
//!     ex:o1 ex:dest ex:Germany ; ex:n 40 .
//!     ex:o2 ex:dest ex:Germany ; ex:n 2 .
//!     ex:o3 ex:dest ex:France ; ex:n 7 .
//! "#, &mut graph).unwrap();
//! let endpoint = LocalEndpoint::new(graph);
//!
//! let solutions = endpoint.select_text(
//!     "SELECT ?d (SUM(?n) AS ?total) WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/n> ?n }
//!      GROUP BY ?d ORDER BY DESC(?total)",
//! ).unwrap();
//! assert_eq!(solutions.len(), 2);
//! assert_eq!(
//!     solutions.value(0, "total").and_then(|v| v.as_number(endpoint.graph())),
//!     Some(42.0),
//! );
//! ```

pub mod ast;
pub mod async_endpoint;
pub mod caching;
pub mod endpoint;
pub mod error;
pub mod eval;
pub mod expr;
pub mod parser;
pub mod pretty;
pub mod results_io;
pub mod sharded;
pub mod tracing;
pub mod value;

pub use ast::{
    AggFunc, ArithOp, CmpOp, Expr, Func, Order, OrderKey, PatternElement, Predicate, Query,
    QueryForm, SelectItem, TermPattern, TriplePattern,
};
pub use async_endpoint::{
    with_async_endpoint, AsyncAdapter, AsyncRequest, AsyncResponse, AsyncSparqlEndpoint, Ticket,
};
pub use caching::CachingEndpoint;
pub use endpoint::{EndpointStats, LatencyHistogram, LocalEndpoint, SparqlEndpoint};
pub use error::SparqlError;
pub use eval::{evaluate, evaluate_ask, evaluate_full, evaluate_with, explain, ExecMode, PlanMode};
pub use parser::parse_query;
pub use pretty::query_to_sparql;
pub use results_io::{to_csv, to_tsv};
pub use sharded::{canonical_order, reference_solutions, Route, ShardedEndpoint};
pub use tracing::TracingEndpoint;
pub use value::{Solutions, Value};
