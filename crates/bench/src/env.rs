//! Experiment environment: builds datasets at configurable scales,
//! bootstraps their schemas, and caches both for reuse across experiments.

use re2x_cube::{bootstrap, BootstrapConfig, BootstrapReport};
use re2x_datagen::{CacheOutcome, Dataset};
use re2x_sparql::LocalEndpoint;
use std::path::Path;
use std::time::Duration;

/// The three Table 3 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Eurostat asylum applications.
    Eurostat,
    /// Production / LCA accounts.
    Production,
    /// DBpedia Creative-Work view.
    Dbpedia,
}

impl DatasetKind {
    /// All datasets, in Table 3 order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Eurostat,
        DatasetKind::Production,
        DatasetKind::Dbpedia,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Eurostat => "Eurostat",
            DatasetKind::Production => "Production",
            DatasetKind::Dbpedia => "DBpedia",
        }
    }

    /// Generator name in the snapshot cache (`re2x_datagen::cache`).
    pub fn cache_name(self) -> &'static str {
        match self {
            DatasetKind::Eurostat => "eurostat",
            DatasetKind::Production => "production",
            DatasetKind::Dbpedia => "dbpedia",
        }
    }
}

/// Observation counts per dataset.
#[derive(Debug, Clone, Copy)]
pub struct Scales {
    /// Eurostat scale.
    pub eurostat: usize,
    /// Production scale.
    pub production: usize,
    /// DBpedia scale.
    pub dbpedia: usize,
}

impl Scales {
    /// Full experiment scale: every base member pool is covered, so the
    /// bootstrapped schemas reproduce Table 3 exactly. (The paper's
    /// observation counts are 15M/15M/541K; synthesis cost is independent
    /// of them, so the reproduction uses laptop-scale counts and records
    /// the difference in EXPERIMENTS.md.)
    pub fn full() -> Scales {
        Scales {
            eurostat: 30_000,
            production: 30_000,
            dbpedia: re2x_datagen::dbpedia::FULL_SHAPE_OBSERVATIONS + 5_000,
        }
    }

    /// Small scale for unit tests and quick Criterion runs: structure
    /// preserved, member counts may undershoot the spec.
    pub fn smoke() -> Scales {
        Scales {
            eurostat: 2_000,
            production: 2_000,
            dbpedia: 3_000,
        }
    }

    /// Scale of one dataset.
    pub fn of(&self, kind: DatasetKind) -> usize {
        match kind {
            DatasetKind::Eurostat => self.eurostat,
            DatasetKind::Production => self.production,
            DatasetKind::Dbpedia => self.dbpedia,
        }
    }
}

/// A dataset ready for experiments: endpoint + bootstrapped schema.
pub struct PreparedDataset {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Generator metadata (expected shape, predicates).
    pub dataset: Dataset,
    /// The endpoint serving it. The dataset's graph has been *moved* into
    /// the endpoint; `dataset.graph` is left empty.
    pub endpoint: LocalEndpoint,
    /// Bootstrap outcome (schema + timings).
    pub report: BootstrapReport,
    /// Time to generate the data (not part of any paper figure, recorded
    /// for context).
    pub generation_time: Duration,
}

/// Builds one dataset at the given scale, moving its graph into an
/// endpoint, and bootstraps the schema from {endpoint, observation class}
/// only.
pub fn prepare(kind: DatasetKind, scales: &Scales, seed: u64) -> PreparedDataset {
    let start = std::time::Instant::now();
    let mut dataset = match kind {
        DatasetKind::Eurostat => re2x_datagen::eurostat::generate(scales.of(kind), seed),
        DatasetKind::Production => re2x_datagen::production::generate(scales.of(kind), seed),
        DatasetKind::Dbpedia => re2x_datagen::dbpedia::generate(scales.of(kind), seed),
    };
    let generation_time = start.elapsed();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let report = bootstrap(&endpoint, &config).expect("bootstrap succeeds on generated data");
    PreparedDataset {
        kind,
        dataset,
        endpoint,
        report,
        generation_time,
    }
}

/// Like [`prepare`], but sources the graph through the persistent snapshot
/// cache under `cache_dir`: a valid cached snapshot is loaded without
/// re-running the generator (zero re-parse, zero re-interning); a miss
/// regenerates and writes the snapshot for next time. The returned
/// [`CacheOutcome`] says which happened; `generation_time` covers whichever
/// path ran.
pub fn prepare_cached(
    kind: DatasetKind,
    scales: &Scales,
    seed: u64,
    cache_dir: &Path,
) -> (PreparedDataset, CacheOutcome) {
    let start = std::time::Instant::now();
    let acquired =
        re2x_datagen::load_or_generate(cache_dir, kind.cache_name(), scales.of(kind), seed);
    let Some((mut dataset, outcome)) = acquired else {
        // cache names cover every DatasetKind; keep a defensive fallback
        let prepared = prepare(kind, scales, seed);
        return (
            prepared,
            CacheOutcome::Generated {
                miss: re2x_datagen::CacheMiss::Absent,
                wrote: false,
            },
        );
    };
    let generation_time = start.elapsed();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let report = bootstrap(&endpoint, &config).expect("bootstrap succeeds on generated data");
    (
        PreparedDataset {
            kind,
            dataset,
            endpoint,
            report,
            generation_time,
        },
        outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_eurostat_prepares_with_exact_shape() {
        let prepared = prepare(DatasetKind::Eurostat, &Scales::smoke(), 42);
        let stats = prepared.report.schema.stats();
        let expected = prepared.dataset.expected;
        assert_eq!(stats.dimensions, expected.dimensions);
        assert_eq!(stats.measures, expected.measures);
        assert_eq!(stats.levels, expected.levels);
        // eurostat pools are covered even at smoke scale (2000 ≥ 171)
        assert_eq!(stats.members, expected.members);
        assert_eq!(
            prepared.report.schema.observation_count,
            Scales::smoke().eurostat
        );
    }
}
