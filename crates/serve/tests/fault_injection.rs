//! Fault injection: one tenant's failures, latency spikes, or outright
//! panics must never stall, corrupt, or take down the others. Seeded
//! [`FlakyEndpoint`] schedules keep every run replayable; the panicking
//! tenant exercises the `catch_unwind` isolation and the poison-tolerant
//! lock discipline under concurrent load.

use re2x_cube::{bootstrap, BootstrapConfig, VirtualSchemaGraph};
use re2x_obs::label;
use re2x_rdf::{Graph, TermId};
use re2x_serve::{
    run_script, FlakyEndpoint, RoundOp, ServeError, ServerBuilder, SessionScript, TenantSpec,
    Ticket,
};
use re2x_sparql::{EndpointStats, LocalEndpoint, Query, Solutions, SparqlEndpoint, SparqlError};
use re2xolap::{RefineOp, SessionConfig};
use std::time::Duration;

fn fixture() -> (Graph, VirtualSchemaGraph) {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    (endpoint.into_graph(), schema)
}

fn script(tenant: &str) -> SessionScript {
    SessionScript {
        tenant: tenant.to_owned(),
        rounds: vec![
            RoundOp::Synthesize {
                example: vec!["Germany".to_owned(), "2014".to_owned()],
                pick: 0,
            },
            RoundOp::Refine {
                op: RefineOp::TopK,
                pick: 0,
            },
        ],
    }
}

/// Panics on every `SELECT` — the worst-behaved tenant imaginable.
struct PanickingEndpoint {
    inner: LocalEndpoint,
}

impl SparqlEndpoint for PanickingEndpoint {
    fn select(&self, _query: &Query) -> Result<Solutions, SparqlError> {
        panic!("tenant code exploded mid-query");
    }
    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        self.inner.ask(query)
    }
    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        self.inner.keyword_search(keyword, exact)
    }
    fn graph(&self) -> &Graph {
        self.inner.graph()
    }
    fn stats(&self) -> EndpointStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[test]
fn one_flaky_tenant_cannot_stall_or_corrupt_the_others() {
    let (graph, schema) = fixture();
    // seeded: roughly every 2nd query fails, every 3rd spikes 2ms
    let flaky = FlakyEndpoint::new(
        LocalEndpoint::new(graph.clone()),
        0xF1A5,
        2,
        3,
        Duration::from_millis(2),
    );
    let server = ServerBuilder::new()
        .workers(3)
        .queue_capacity(32)
        .tenant(TenantSpec::new("stable"))
        .tenant_stack("flaky", Box::new(flaky))
        .start(&graph, &schema);

    let mut tickets: Vec<(bool, Ticket)> = Vec::new();
    for i in 0..12 {
        let tenant = if i % 2 == 0 { "stable" } else { "flaky" };
        let t = server.submit(script(tenant)).expect("admitted");
        tickets.push((tenant == "stable", t));
    }

    let oracle = LocalEndpoint::new(graph.clone());
    let expected = run_script(
        &oracle,
        &schema,
        &script("stable"),
        &SessionConfig::default(),
    )
    .expect("serial oracle")
    .to_text();

    let mut flaky_failures = 0;
    for (stable, ticket) in tickets {
        let outcome = server.wait(ticket);
        if stable {
            // every stable session completes, bit-exact, regardless of the
            // chaos next door
            assert_eq!(outcome.expect("stable session").to_text(), expected);
        } else {
            match outcome {
                Ok(_) => {}
                Err(e @ ServeError::Session(_)) => {
                    assert!(e.to_string().contains("injected fault"), "got {e}");
                    flaky_failures += 1;
                }
                Err(other) => panic!("unexpected serve error: {other:?}"),
            }
        }
    }
    assert!(
        flaky_failures > 0,
        "a 1-in-2 fault schedule over 6 sessions must trip at least once"
    );

    let m = server.metrics();
    assert_eq!(
        m.counter(&label("serve.sessions_failed", &[("tenant", "stable")])),
        0
    );
    assert_eq!(
        m.counter(&label("serve.sessions_failed", &[("tenant", "flaky")])),
        flaky_failures
    );
    server.shutdown();
}

#[test]
fn panicking_workers_under_load_leave_the_server_functional() {
    let (graph, schema) = fixture();
    let server = ServerBuilder::new()
        .workers(2)
        .queue_capacity(32)
        .tenant(TenantSpec::new("stable"))
        .tenant_stack(
            "boom",
            Box::new(PanickingEndpoint {
                inner: LocalEndpoint::new(graph.clone()),
            }),
        )
        .start(&graph, &schema);

    // interleave panicking and healthy sessions across both workers
    let tickets: Vec<(bool, Ticket)> = (0..10)
        .map(|i| {
            let tenant = if i % 2 == 0 { "boom" } else { "stable" };
            (
                tenant == "stable",
                server.submit(script(tenant)).expect("admitted"),
            )
        })
        .collect();

    let oracle = LocalEndpoint::new(graph.clone());
    let expected = run_script(
        &oracle,
        &schema,
        &script("stable"),
        &SessionConfig::default(),
    )
    .expect("serial oracle")
    .to_text();

    for (stable, ticket) in tickets {
        let outcome = server.wait(ticket);
        if stable {
            assert_eq!(outcome.expect("stable survives").to_text(), expected);
        } else {
            assert_eq!(outcome, Err(ServeError::WorkerPanicked));
        }
    }

    // the workers that caught panics are still alive and serving
    let after = server.run(script("stable")).expect("server still serves");
    assert_eq!(after.to_text(), expected);

    let m = server.metrics();
    assert_eq!(
        m.counter(&label("serve.worker_panics", &[("tenant", "boom")])),
        5
    );
    assert_eq!(
        m.counter(&label("serve.sessions_completed", &[("tenant", "stable")])),
        6
    );
    // and the drain still works — no lock was left poisoned or held
    server.shutdown();
    assert_eq!(
        m.gauge(&label("serve.sessions_active", &[("tenant", "boom")]))
            .unwrap_or(0.0),
        0.0
    );
}

#[test]
fn fault_schedules_replay_identically_for_a_fixed_seed() {
    let (graph, schema) = fixture();
    let outcomes = |seed: u64| -> Vec<bool> {
        let server = ServerBuilder::new()
            .workers(1)
            .queue_capacity(16)
            .tenant_stack(
                "flaky",
                Box::new(FlakyEndpoint::failing(
                    LocalEndpoint::new(graph.clone()),
                    seed,
                    3,
                )),
            )
            .start(&graph, &schema);
        (0..6)
            .map(|_| server.run(script("flaky")).is_ok())
            .collect()
    };
    assert_eq!(outcomes(41), outcomes(41), "same seed, same fault pattern");
}
