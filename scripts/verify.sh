#!/usr/bin/env bash
# Full offline verification gate: tier-1 (release build + tests) plus the
# complete workspace test suite, with warnings promoted to errors.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export CARGO_NET_OFFLINE="true"

echo "== formatting =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "== bench targets compile (bench-criterion) =="
cargo build --offline -p re2x-bench --benches --features bench-criterion

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --offline --all-targets -- -D warnings

echo "== static analysis (re2x-lint, baseline-gated) =="
# The workspace lints itself: zero findings outside lint-baseline.txt and
# zero stale baseline entries (the baseline may only shrink). The JSON
# output must parse and agree with the gate, and the lock-order graph
# assembled from the `// lock-order:` registry must stay acyclic.
cargo run -q --release --offline -p re2x-lint
if command -v python3 >/dev/null 2>&1; then
    mkdir -p bench_results
    cargo run -q --release --offline -p re2x-lint -- --format json > bench_results/lint.json
    python3 - <<'EOF'
import json
with open("bench_results/lint.json") as f:
    report = json.load(f)
assert report["findings"] == [], f"unbaselined findings: {report['findings']}"
assert report["stale_baseline"] == [], f"stale baseline entries: {report['stale_baseline']}"
locks = set(report["locks"])
assert len(locks) >= 13, f"lock registry shrank unexpectedly: {sorted(locks)}"
for edge in report["lock_edges"] + report["declared_edges"]:
    assert edge["from"] in locks and edge["to"] in locks, f"dangling edge: {edge}"
declared = {(e["from"], e["to"]) for e in report["declared_edges"]}
extracted = {(e["from"], e["to"]) for e in report["lock_edges"]}
assert extracted <= declared, \
    f"extracted nesting not covered by declared // lock-order edges: {extracted - declared}"
print(f"lint.json: valid JSON; {report['baseline_matched']} baselined, "
      f"{report['suppressed']} allowed, {len(locks)} locks, "
      f"{len(report['lock_edges'])} nesting edges, {len(declared)} declared")
EOF
fi

echo "== lock witness: concurrent suites under RE2X_LOCK_WITNESS=1 =="
# The runtime half of the lock-order cross-check: re-run the concurrent
# suites with the witness recording every nesting real threads perform,
# then the witness gate asserts observed edges are a subset of the static
# registry graph (extracted + declared) and the union stays acyclic.
RE2X_LOCK_WITNESS=1 cargo test -q --offline -p re2x-obs -p re2x-sparql -p re2x-serve
RE2X_LOCK_WITNESS=1 cargo test -q --offline -p re2x-lint --test witness_gate

echo "== trace experiment (smallest dataset, offline) =="
# The trace experiment runs on the in-memory running-example generator —
# no datasets, no network — and must emit a well-formed trace.json
# including the serial-vs-async fan-out comparison row.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results trace
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("bench_results/trace.json") as f:
    trace = json.load(f)
comparison = trace["async_comparison"]
ratio = float(comparison["overlap_ratio"])
assert ratio > 0.0, f"overlap_ratio must be positive, got {ratio}"
assert comparison["identical"] is True, "async legs diverged from serial"
assert float(comparison["speedup"]) > 0.0
print(f"trace.json: valid JSON; async row: {comparison['speedup']:.2f}x speedup, "
      f"overlap ratio {ratio:.2f}")
EOF
else
    # no python3 in the environment: fall back to a structural spot-check
    grep -q '"endpoint_fraction"' bench_results/trace.json
    grep -q '"async_comparison"' bench_results/trace.json
    grep -q '"overlap_ratio"' bench_results/trace.json
    grep -q '"identical": true' bench_results/trace.json
    echo "trace.json: present (python3 unavailable, structural check only)"
fi

echo "== sharded endpoint differential suite (offline) =="
# The scatter-gather decorator must stay byte-identical to LocalEndpoint
# (ulp-tolerant on the float-measure dataset) across every shard count.
cargo test -q --offline -p re2x-sparql --test sharded_differential

echo "== sharding experiment (offline) =="
# Scatter-gather over hash-partitioned shards with 2 ms injected latency:
# the 4-shard configuration must reclaim at least 1.5x of the 1-shard wall
# time, and every swept row must be reference-identical.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results sharding
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("bench_results/sharding.json") as f:
    report = json.load(f)
assert report["all_identical"] is True, "a sharded configuration diverged from the reference"
assert report["shard_busy_exposed"] is True, "per-shard shard_busy gauges missing from exposition"
rows = {row["shards"]: row for row in report["rows"]}
assert set(rows) == {1, 2, 4, 8}, f"expected shard counts 1/2/4/8, got {sorted(rows)}"
for row in rows.values():
    assert row["identical"] is True
    assert float(row["skew"]) >= 1.0
speedup = float(rows[4]["speedup"])
assert speedup >= 1.5, f"4-shard speedup must be >= 1.5x, got {speedup:.2f}x"
print(f"sharding.json: valid JSON; 4-shard speedup {speedup:.2f}x, "
      f"8-shard {float(rows[8]['speedup']):.2f}x, all identical")
EOF
else
    # no python3 in the environment: fall back to a structural spot-check
    grep -q '"all_identical": true' bench_results/sharding.json
    grep -q '"shard_busy_exposed": true' bench_results/sharding.json
    grep -q '"shards": 8' bench_results/sharding.json
    grep -q '"skew"' bench_results/sharding.json
    echo "sharding.json: present (python3 unavailable, structural check only)"
fi

echo "== plan differential suite (offline) =="
# Every PlanMode x ExecMode combination must produce identical solutions
# across the figure datasets and the seeded random-query harness, and the
# sharded composition must stay identical with columnar shards.
cargo test -q --offline -p re2x-sparql --test plan_differential

echo "== plan experiment (offline) =="
# Planner + executor ablation on the dbpedia M-to-N dataset: the greedy
# planner with columnar execution must beat the naive in-order row
# baseline by at least 1.5x on the adversarially-ordered workload, with
# all four configurations byte-identical.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results plan
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("bench_results/plan.json") as f:
    report = json.load(f)
assert report["all_identical"] is True, "a plan/exec configuration diverged"
rows = {row["config"]: row for row in report["rows"]}
expected = {"planned+columnar", "planned+row", "in-order+columnar", "in-order+row"}
assert set(rows) == expected, f"expected configs {sorted(expected)}, got {sorted(rows)}"
for row in rows.values():
    assert row["identical"] is True
    assert int(row["rows"]) > 0
speedup = float(report["planned_speedup"])
assert speedup >= 1.5, f"planned+columnar speedup must be >= 1.5x, got {speedup:.2f}x"
assert float(report["columnar_speedup"]) > 0.0
print(f"plan.json: valid JSON; planned+columnar {speedup:.2f}x over in-order+row, "
      f"columnar {float(report['columnar_speedup']):.2f}x over row, all identical")
EOF
else
    # no python3 in the environment: fall back to a structural spot-check
    grep -q '"all_identical": true' bench_results/plan.json
    grep -q '"config": "in-order+row"' bench_results/plan.json
    grep -q '"planned_speedup"' bench_results/plan.json
    echo "plan.json: present (python3 unavailable, structural check only)"
fi

echo "== snapshot suites: round-trip / corruption / dataset cache (offline) =="
# write_snapshot -> load_snapshot must be the identity on graphs (incl.
# removal-orphaned text state and per-shard artifacts); every corrupted,
# truncated, stale or foreign file must fail with a typed error, never a
# panic; and all four dataset generators must round-trip through the
# cache layer with stale artifacts regenerated, not trusted.
cargo test -q --offline -p re2x-rdf --test snapshot_roundtrip
cargo test -q --offline -p re2x-rdf --test snapshot_corruption
cargo test -q --offline -p re2x-datagen --test snapshot_datasets

echo "== scale experiment: snapshot load vs regeneration ladder (offline) =="
# The smoke ladder (100k/200k/400k observations): snapshot load must beat
# regeneration >= 5x on every rung, every loaded graph must prove
# digest- and probe-identical to the generated one, and bootstrap/ReOLAP
# latency must stay schema-bound (sublinear) as the data grows 4x.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results --scale smoke scale
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("bench_results/scale.json") as f:
    report = json.load(f)
rungs = report["rungs"]
assert len(rungs) >= 3, f"expected >= 3 ladder rungs, got {len(rungs)}"
speedup = float(report["min_load_speedup"])
assert speedup >= 5.0, f"min load speedup must be >= 5x, got {speedup:.2f}x"
assert report["all_identical"] is True, "a loaded snapshot diverged from the regenerated graph"
assert report["bootstrap_sublinear"] is True, "bootstrap latency grew superlinearly"
assert report["reolap_sublinear"] is True, "reolap latency grew superlinearly"
obs = [int(r["observations"]) for r in rungs]
assert obs == sorted(obs) and len(set(obs)) == len(obs), f"rungs must ascend: {obs}"
for r in rungs:
    assert r["cache_hit"] is True and r["identical"] is True
    assert float(r["load_speedup"]) >= 5.0, \
        f"rung {r['observations']}: load speedup {r['load_speedup']}"
print(f"scale.json: valid JSON; {len(rungs)} rungs, min load speedup {speedup:.2f}x, "
      f"all identical, analytics sublinear")
EOF
else
    # no python3 in the environment: fall back to a structural spot-check
    grep -q '"all_identical": true' bench_results/scale.json
    grep -q '"bootstrap_sublinear": true' bench_results/scale.json
    grep -q '"reolap_sublinear": true' bench_results/scale.json
    echo "scale.json: present (python3 unavailable, structural check only)"
fi

echo "== serve suites: concurrency / admission / fault injection (offline) =="
# The multi-tenant server must replay byte-identically against the serial
# oracle, reject over-admission with typed errors, and contain injected
# faults and worker panics to the offending tenant.
cargo test -q --offline -p re2x-serve

echo "== serve experiment (offline) =="
# Deterministic Zipf workload over three tenant stacks, swept across
# worker counts: every transcript must match the serial replay, the
# queue is sized for the load so nothing may be rejected, and p50/p99
# must be present for at least three worker counts.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results serve
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
with open("bench_results/serve.json") as f:
    report = json.load(f)
assert report["all_identical"] is True, "a served transcript diverged from the serial replay"
assert int(report["total_rejected"]) == 0, \
    f"admission control rejected {report['total_rejected']} sessions at low load"
rows = {row["workers"]: row for row in report["rows"]}
assert len(rows) >= 3, f"expected >= 3 worker counts, got {sorted(rows)}"
sessions = int(report["sessions"])
for row in rows.values():
    assert row["identical"] is True
    assert int(row["completed"]) == sessions, \
        f"{row['workers']} workers completed {row['completed']}/{sessions}"
    assert int(row["failed"]) == 0 and int(row["rejected"]) == 0
    p50, p99 = float(row["p50_us"]), float(row["p99_us"])
    assert 0.0 < p50 <= p99, f"malformed latency quantiles: p50={p50}, p99={p99}"
    assert float(row["throughput_sps"]) > 0.0
print(f"serve.json: valid JSON; {sessions} sessions x {len(rows)} worker counts, "
      f"all identical, zero rejections")
EOF
else
    # no python3 in the environment: fall back to a structural spot-check
    grep -q '"all_identical": true' bench_results/serve.json
    grep -q '"total_rejected": 0' bench_results/serve.json
    grep -q '"workers": 4' bench_results/serve.json
    grep -q '"p99_us"' bench_results/serve.json
    echo "serve.json: present (python3 unavailable, structural check only)"
fi

echo "== watch: headless golden-frame replay (offline) =="
# The TUI replay is a pure function of the recorded event log: rendering
# the committed scripted-session fixture must reproduce the committed
# golden frame script byte-for-byte (no wall clock, no terminal, no
# network in the render path). repro exits nonzero on any drift.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results watch --headless
grep -q "golden frames matched byte-for-byte" bench_results/watch.txt
# determinism double-check: a second replay must emit identical bytes
cp bench_results/watch.txt bench_results/watch.first.txt
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results watch --headless
cmp bench_results/watch.first.txt bench_results/watch.txt
rm -f bench_results/watch.first.txt
echo "watch: golden frames stable across runs"

echo "verify: OK"
