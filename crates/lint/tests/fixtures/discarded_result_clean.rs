//! discarded-result CLEAN fixture: every call site consumes the
//! `Result` — bound to a name, propagated with `?`, inspected, returned,
//! or matched.

pub fn persist(path: &str) -> Result<usize, String> {
    Ok(path.len())
}

pub fn run(path: &str) -> Result<usize, String> {
    let first = persist(path)?;
    let outcome = persist(path);
    if persist(path).is_ok() {
        return persist(path);
    }
    match persist(path) {
        Ok(n) => Ok(first + n),
        Err(e) => outcome.map(|n| n + e.len()),
    }
}
