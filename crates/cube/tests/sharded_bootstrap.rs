//! Differential test: the schema bootstrap crawl over a [`ShardedEndpoint`]
//! must discover exactly the schema it discovers over a [`LocalEndpoint`] on
//! the same graph — the crawl's query mix (schema probes, DISTINCT member
//! enumeration, keyword lookups) exercises both the scatter and the replica
//! path of the sharded decorator.

use re2x_cube::{bootstrap, bootstrap_parallel, BootstrapConfig};
use re2x_sparql::{LocalEndpoint, ShardedEndpoint};

fn assert_sharded_matches_local(dataset: re2x_datagen::Dataset, shards: usize) {
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let local = LocalEndpoint::new(dataset.graph.clone());
    let sharded =
        ShardedEndpoint::with_observation_class(dataset.graph, &dataset.observation_class, shards);

    let reference = bootstrap(&local, &config).expect("local bootstrap");
    let over_shards = bootstrap(&sharded, &config).expect("sharded bootstrap");

    assert_eq!(
        over_shards.schema, reference.schema,
        "sharded bootstrap diverges from local for {} at {shards} shards",
        dataset.name
    );
    assert_eq!(
        over_shards.endpoint_queries, reference.endpoint_queries,
        "sharded crawl issued a different number of queries for {}",
        dataset.name
    );
    // Sanity: the discovered shape is the one the generator committed to.
    assert_eq!(
        reference.schema.dimensions().len(),
        dataset.expected.dimensions
    );
    assert_eq!(reference.schema.measures().len(), dataset.expected.measures);
}

#[test]
fn running_example_bootstrap_identical_across_shard_counts() {
    for shards in [1, 2, 4, 8] {
        assert_sharded_matches_local(re2x_datagen::running::generate(), shards);
    }
}

#[test]
fn eurostat_bootstrap_identical_over_shards() {
    assert_sharded_matches_local(re2x_datagen::eurostat::generate(500, 7), 4);
}

#[test]
fn production_bootstrap_identical_over_shards() {
    assert_sharded_matches_local(re2x_datagen::production::generate(400, 11), 4);
}

#[test]
fn parallel_bootstrap_over_sharded_endpoint() {
    // Parallel crawl over the scatter-gather decorator: concurrent callers
    // against concurrent shard fan-out.
    let dataset = re2x_datagen::eurostat::generate(400, 3);
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let local = LocalEndpoint::new(dataset.graph.clone());
    let sharded =
        ShardedEndpoint::with_observation_class(dataset.graph, &dataset.observation_class, 4);
    let reference = bootstrap(&local, &config).expect("local bootstrap");
    let parallel = bootstrap_parallel(&sharded, &config).expect("parallel sharded bootstrap");
    assert_eq!(parallel.schema, reference.schema);
}
