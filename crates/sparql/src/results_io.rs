//! Serialization of solution sequences in the W3C "SPARQL 1.1 Query
//! Results CSV and TSV Formats" — the interchange formats analysts feed
//! into spreadsheets and notebooks, and the natural export for RE²xOLAP's
//! aggregate tables.

use crate::value::{format_number, Solutions, Value};
use re2x_rdf::{Graph, Term};

/// Serializes solutions as SPARQL-results CSV (RFC 4180 quoting; IRIs
/// bare, literals by lexical form, unbound as empty fields).
pub fn to_csv(solutions: &Solutions, graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&join(solutions.vars.iter().map(|v| csv_escape(v)), ","));
    out.push_str("\r\n");
    for row in &solutions.rows {
        let cells = row.iter().map(|cell| match cell {
            None => String::new(),
            Some(v) => csv_escape(&csv_form(v, graph)),
        });
        out.push_str(&join(cells, ","));
        out.push_str("\r\n");
    }
    out
}

/// Serializes solutions as SPARQL-results TSV (terms in N-Triples-ish
/// syntax: IRIs in angle brackets, literals quoted, numbers bare).
pub fn to_tsv(solutions: &Solutions, graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&join(solutions.vars.iter().map(|v| format!("?{v}")), "\t"));
    out.push('\n');
    for row in &solutions.rows {
        let cells = row.iter().map(|cell| match cell {
            None => String::new(),
            Some(v) => tsv_form(v, graph),
        });
        out.push_str(&join(cells, "\t"));
        out.push('\n');
    }
    out
}

fn join(items: impl Iterator<Item = String>, sep: &str) -> String {
    items.collect::<Vec<_>>().join(sep)
}

/// CSV value form: bare IRI / lexical form / formatted number.
fn csv_form(value: &Value, graph: &Graph) -> String {
    value.string_form(graph)
}

/// RFC 4180: quote when the field contains comma, quote, CR or LF; double
/// inner quotes.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\r', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// TSV term form per the W3C format: full term syntax.
fn tsv_form(value: &Value, graph: &Graph) -> String {
    match value {
        Value::Term(id) => match graph.term(*id) {
            Term::Iri(iri) => format!("<{iri}>"),
            t => t.to_string(),
        },
        Value::Number(n) => format_number(*n),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => Term::from(re2x_rdf::Literal::simple(s.clone())).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::Literal;

    fn sample() -> (Graph, Solutions) {
        let mut g = Graph::new();
        let iri = g.intern_iri("http://ex/Germany");
        let tricky = g.intern_literal(Literal::simple("a,b \"c\""));
        let solutions = Solutions {
            vars: vec!["dest".into(), "note".into(), "total".into()],
            rows: vec![
                vec![
                    Some(Value::Term(iri)),
                    Some(Value::Term(tricky)),
                    Some(Value::Number(8030.0)),
                ],
                vec![None, None, Some(Value::Number(2.5))],
            ],
        };
        (g, solutions)
    }

    #[test]
    fn csv_quotes_per_rfc4180() {
        let (g, s) = sample();
        let csv = to_csv(&s, &g);
        let lines: Vec<&str> = csv.split("\r\n").collect();
        assert_eq!(lines[0], "dest,note,total");
        assert_eq!(lines[1], "http://ex/Germany,\"a,b \"\"c\"\"\",8030");
        assert_eq!(lines[2], ",,2.5");
    }

    #[test]
    fn tsv_uses_term_syntax() {
        let (g, s) = sample();
        let tsv = to_tsv(&s, &g);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "?dest\t?note\t?total");
        assert!(lines[1].starts_with("<http://ex/Germany>\t\"a,b \\\"c\\\"\"\t8030"));
        assert_eq!(lines[2], "\t\t2.5");
    }

    #[test]
    fn empty_solutions_serialize_to_header_only() {
        let g = Graph::new();
        let s = Solutions {
            vars: vec!["x".into()],
            rows: vec![],
        };
        assert_eq!(to_csv(&s, &g), "x\r\n");
        assert_eq!(to_tsv(&s, &g), "?x\n");
    }
}
