//! Deterministic pseudo-random number generation.
//!
//! [`TestRng`] is a xoshiro256\*\* generator (Blackman & Vigna) seeded via
//! [`SplitMix64`], the standard seeding recipe for the xoshiro family. Both
//! are tiny, portable, and — unlike external crates — guaranteed to produce
//! the same stream on every platform and toolchain, which is what makes
//! failing-seed replay and byte-identical dataset generation possible.

use std::ops::Range;

/// The SplitMix64 generator: one 64-bit state word, used to expand a single
/// seed into the four xoshiro state words and to derive per-case seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic xoshiro256\*\* generator with the sampling helpers the
/// workspace's generators and property tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion — the
    /// same recipe `rand`'s `SeedableRng::seed_from_u64` documents, so seeds
    /// remain meaningful identifiers across the workspace).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = SplitMix64::new(seed);
        TestRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in a half-open range. Implemented for the integer
    /// types the workspace samples plus `f64`.
    ///
    /// # Panics
    /// If the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Sample {
        R::sample(range, self)
    }

    /// Uniformly picks an element of a non-empty slice.
    ///
    /// # Panics
    /// If the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Picks an index with probability proportional to its weight — the
    /// harness's analogue of a frequency-weighted choice combinator.
    ///
    /// # Panics
    /// If all weights are zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "pick_weighted needs a positive total weight");
        let mut roll = self.gen_range(0..total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }

    /// A string of length within `len`, each character drawn uniformly from
    /// `alphabet` (the harness's analogue of a character-class regex
    /// generator).
    ///
    /// # Panics
    /// If `alphabet` is empty and a non-empty length is drawn.
    pub fn string_from(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.gen_range(len);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// A string of length within `len` over arbitrary Unicode scalar values
    /// (for never-panics robustness properties).
    pub fn unicode_string(&mut self, len: Range<usize>) -> String {
        let n = self.gen_range(len);
        (0..n)
            .map(|_| loop {
                // surrogates are not scalar values; re-roll them
                if let Some(c) = char::from_u32((self.next_u64() % 0x11_0000) as u32) {
                    break c;
                }
            })
            .collect()
    }
}

/// A range type [`TestRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Sample;

    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut TestRng) -> Self::Sample;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Sample = $t;

            fn sample(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // multiply-shift bounded sampling; the tiny modulo bias of a
                // plain % would also be fine for tests, but this is exact
                // enough for any span the workspace uses and stays branchless
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Sample = f64;

    fn sample(self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // reference output for seed 1234567 from the published C code
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = TestRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::seed_from_u64(7);
        for _ in 0..2000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
            let f = r.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = TestRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = TestRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25%, got {hits}");
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut r = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let i = r.pick_weighted(&[0, 3, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn string_generators_produce_requested_shapes() {
        let mut r = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = r.string_from("abc", 2..5);
            assert!((2..5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc".contains(c)));
            let u = r.unicode_string(0..10);
            assert!(u.chars().count() < 10);
        }
    }
}
