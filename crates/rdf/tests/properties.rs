//! Property-based tests of the store's core invariants: index agreement
//! under arbitrary insert/remove interleavings, serialization round-trips
//! for arbitrary terms, and text-index consistency.
//!
//! Run on the in-repo [`re2x_testkit`] harness: deterministic per-case
//! seeds, `RE2X_TEST_CASES` budget, `RE2X_TEST_SEED` replay.

use re2x_rdf::io::{parse_ntriples, to_ntriples};
use re2x_rdf::{Graph, Literal, Term};
use re2x_testkit::{check, TestRng};

// ---- generators -----------------------------------------------------------

const IRI_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.#/:-";
const ALNUM: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

/// Printable ASCII (the `[ -~]` class), including characters that need
/// escaping in N-Triples.
fn printable(rng: &mut TestRng, len: std::ops::Range<usize>) -> String {
    let ascii: String = (' '..='~').collect();
    rng.string_from(&ascii, len)
}

/// IRIs without angle brackets / whitespace / control characters.
fn gen_iri(rng: &mut TestRng) -> Term {
    Term::iri(format!(
        "http://ex/{}",
        rng.string_from(IRI_ALPHABET, 1..25)
    ))
}

fn gen_literal(rng: &mut TestRng) -> Literal {
    match rng.pick_weighted(&[1, 1, 1, 1]) {
        0 => Literal::simple(printable(rng, 0..17)),
        1 => Literal::integer(rng.next_u64() as i64),
        2 => Literal::double(rng.gen_range(-1.0e9f64..1.0e9)),
        _ => Literal::tagged(
            printable(rng, 1..9),
            rng.string_from("abcdefghijklmnopqrstuvwxyz", 2..3),
        ),
    }
}

fn gen_term(rng: &mut TestRng) -> Term {
    match rng.pick_weighted(&[4, 1, 3]) {
        0 => gen_iri(rng),
        1 => Term::blank(rng.string_from(ALNUM, 1..9)),
        _ => Term::from(gen_literal(rng)),
    }
}

fn gen_triple(rng: &mut TestRng) -> (Term, Term, Term) {
    (gen_iri(rng), gen_iri(rng), gen_term(rng))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Term, Term, Term),
    /// Remove the i-th triple currently in the graph (mod size).
    RemoveNth(usize),
}

fn gen_ops(rng: &mut TestRng) -> Vec<Op> {
    let n = rng.gen_range(1usize..60);
    (0..n)
        .map(|_| match rng.pick_weighted(&[4, 1]) {
            0 => {
                let (s, p, o) = gen_triple(rng);
                Op::Insert(s, p, o)
            }
            _ => Op::RemoveNth(rng.gen_range(0usize..64)),
        })
        .collect()
}

// ---- properties -----------------------------------------------------------

/// After any interleaving of inserts and removes, the graph agrees with a
/// naive set-of-triples model on every access path.
#[test]
fn indexes_agree_with_set_model() {
    check("indexes_agree_with_set_model", |rng| {
        let ops = gen_ops(rng);
        let mut graph = Graph::new();
        let mut model: Vec<(Term, Term, Term)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(s, p, o) => {
                    let inserted = graph.insert(s.clone(), p.clone(), o.clone());
                    let fresh = !model.contains(&(s.clone(), p.clone(), o.clone()));
                    assert_eq!(inserted, fresh);
                    if fresh {
                        model.push((s, p, o));
                    }
                }
                Op::RemoveNth(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (s, p, o) = model.remove(i % model.len());
                    let sid = graph.term_id(&s).expect("inserted");
                    let pid = graph.term_id(&p).expect("inserted");
                    let oid = graph.term_id(&o).expect("inserted");
                    assert!(graph.remove_ids(sid, pid, oid));
                }
            }
        }
        assert_eq!(graph.len(), model.len());
        // every model triple is found through every single-bound pattern
        for (s, p, o) in &model {
            let sid = graph.term_id(s).expect("known");
            let pid = graph.term_id(p).expect("known");
            let oid = graph.term_id(o).expect("known");
            assert!(graph.contains_ids(sid, pid, oid));
            assert!(graph.objects(sid, pid).contains(&oid));
            assert!(graph.subjects(pid, oid).contains(&sid));
            assert!(graph.predicates_between(sid, oid).contains(&pid));
        }
        // pattern counts are consistent with full materialization
        assert_eq!(graph.count_matching(None, None, None), model.len());
        assert_eq!(graph.iter().len(), model.len());
    });
}

/// The incrementally maintained per-predicate statistics agree with a full
/// recount after any interleaving of inserts and removes, and every
/// posting list stays sorted (the invariant the vectorized merge-join
/// executor in `re2x-sparql` intersects on).
#[test]
fn predicate_stats_and_sortedness_survive_interleavings() {
    check("predicate_stats_incremental", |rng| {
        let ops = gen_ops(rng);
        let mut graph = Graph::new();
        let mut model: Vec<(Term, Term, Term)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(s, p, o) => {
                    if graph.insert(s.clone(), p.clone(), o.clone()) {
                        model.push((s, p, o));
                    }
                }
                Op::RemoveNth(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (s, p, o) = model.remove(i % model.len());
                    let sid = graph.term_id(&s).expect("inserted");
                    let pid = graph.term_id(&p).expect("inserted");
                    let oid = graph.term_id(&o).expect("inserted");
                    assert!(graph.remove_ids(sid, pid, oid));
                }
            }
        }
        // stats agree with a recount for every predicate ever seen
        let mut preds: Vec<Term> = model.iter().map(|(_, p, _)| p.clone()).collect();
        preds.sort_unstable_by_key(|a| a.to_string());
        preds.dedup();
        for p in &preds {
            let pid = graph.term_id(p).expect("known");
            let triples = graph.matching(None, Some(pid), None);
            let mut subjects: Vec<_> = triples.iter().map(|t| t.s).collect();
            subjects.sort_unstable();
            subjects.dedup();
            let mut objects: Vec<_> = triples.iter().map(|t| t.o).collect();
            objects.sort_unstable();
            objects.dedup();
            let stats = graph.predicate_stats(pid);
            assert_eq!(stats.triples, triples.len(), "triples for {p}");
            assert_eq!(stats.distinct_subjects, subjects.len(), "subjects for {p}");
            assert_eq!(stats.distinct_objects, objects.len(), "objects for {p}");
            assert_eq!(graph.predicate_cardinality(pid), triples.len());
        }
        // sorted adjacency views
        for (s, p, o) in &model {
            let sid = graph.term_id(s).expect("known");
            let pid = graph.term_id(p).expect("known");
            let oid = graph.term_id(o).expect("known");
            assert!(graph.objects(sid, pid).windows(2).all(|w| w[0] < w[1]));
            assert!(graph.subjects(pid, oid).windows(2).all(|w| w[0] < w[1]));
            assert!(graph
                .predicates_between(sid, oid)
                .windows(2)
                .all(|w| w[0] < w[1]));
        }
    });
}

/// N-Triples serialization round-trips arbitrary graphs bytewise.
#[test]
fn ntriples_round_trip() {
    check("ntriples_round_trip", |rng| {
        let mut graph = Graph::new();
        for _ in 0..rng.gen_range(0usize..40) {
            let (s, p, o) = gen_triple(rng);
            graph.insert(s, p, o);
        }
        let text = to_ntriples(&graph);
        let mut reloaded = Graph::new();
        let inserted = parse_ntriples(&text, &mut reloaded).expect("reparse");
        assert_eq!(inserted, graph.len());
        assert_eq!(to_ntriples(&reloaded), text);
    });
}

/// Exact text search finds precisely the literals whose normalized form
/// matches.
#[test]
fn text_index_exact_matches_normalization() {
    check("text_index_exact_matches_normalization", |rng| {
        let count = rng.gen_range(1usize..20);
        let literals: Vec<String> = (0..count)
            .map(|_| {
                rng.string_from(
                    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ",
                    1..13,
                )
            })
            .collect();
        let probe = rng.gen_range(0usize..20);
        let mut graph = Graph::new();
        let subject = graph.intern_iri("http://ex/s");
        let pred = graph.intern_iri("http://ex/label");
        for lit in &literals {
            let id = graph.intern_literal(Literal::simple(lit.clone()));
            graph.insert_ids(subject, pred, id);
        }
        let needle = &literals[probe % literals.len()];
        let hits = graph.literals_matching_exact(needle);
        // expected: the number of *distinct literal terms* whose normalized
        // lexical form equals the needle's (identical strings intern to one
        // term; differently-spaced variants stay distinct)
        let mut expected: Vec<&String> = literals
            .iter()
            .filter(|l| re2x_rdf::text::normalize(l) == re2x_rdf::text::normalize(needle))
            .collect();
        expected.sort();
        expected.dedup();
        assert_eq!(hits.len(), expected.len());
    });
}

/// Numeric literal caching agrees with on-demand parsing.
#[test]
fn numeric_cache_is_correct() {
    check("numeric_cache_is_correct", |rng| {
        let n = rng.next_u64() as i64;
        let mut graph = Graph::new();
        let id = graph.intern_literal(Literal::integer(n));
        assert_eq!(graph.numeric_value(id), Some(n as f64));
    });
}
