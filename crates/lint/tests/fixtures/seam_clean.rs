//! endpoint-seam CLEAN fixture (linted as crate `core`): every probe goes
//! through the `SparqlEndpoint` trait; `graph()` only resolves term ids.

pub fn through_the_seam(
    endpoint: &dyn SparqlEndpoint,
    query: &Query,
) -> Result<usize, SparqlError> {
    let solutions = endpoint.select(query)?;
    let graph = endpoint.graph();
    let mut named = 0;
    for row in &solutions.rows {
        if let Some(Value::Term(id)) = row[0].as_ref() {
            if graph.term(*id).as_iri().is_some() {
                named += 1;
            }
        }
    }
    Ok(named)
}
