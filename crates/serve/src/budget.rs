//! Per-session query budgets.
//!
//! [`QueryBudget`] is the innermost per-session decorator: it admits at
//! most `limit` `SELECT`/`ASK` queries to the tenant stack it borrows and
//! refuses every query after that with the typed
//! [`SparqlError::BudgetExhausted`] — *without* forwarding it, so a
//! runaway session is cut off **exactly at the budget**: the endpoint
//! answers the `limit`-th query and never sees the `limit + 1`-th.
//!
//! Keyword lookups are not budgeted: the seam's `keyword_search` has no
//! error channel (it returns hits, not a `Result`), and silently returning
//! an empty hit list would corrupt synthesis instead of failing it. The
//! budget therefore bounds the expensive evaluated-query traffic, which is
//! what the paper's cost model attributes endpoint load to.

use re2x_rdf::{Graph, TermId};
use re2x_sparql::{EndpointStats, Query, Solutions, SparqlEndpoint, SparqlError};
use std::sync::atomic::{AtomicU64, Ordering};

/// A borrowing decorator enforcing a per-session query budget over a
/// tenant's endpoint stack.
pub struct QueryBudget<'a> {
    inner: &'a dyn SparqlEndpoint,
    limit: u64,
    admitted: AtomicU64,
    refused: AtomicU64,
}

impl<'a> QueryBudget<'a> {
    /// Wraps `inner`, admitting at most `limit` `SELECT`/`ASK` queries.
    pub fn new(inner: &'a dyn SparqlEndpoint, limit: u64) -> QueryBudget<'a> {
        QueryBudget {
            inner,
            limit,
            admitted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        }
    }

    /// Queries admitted to the inner endpoint so far (never exceeds the
    /// limit).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::SeqCst)
    }

    /// Queries refused after exhaustion.
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::SeqCst)
    }

    /// The configured budget.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Reserves one admission slot, or reports exhaustion. A CAS loop so
    /// concurrent callers (a preview fan-out inside one session) can never
    /// push the admitted count past the limit.
    fn admit(&self) -> Result<(), SparqlError> {
        loop {
            let used = self.admitted.load(Ordering::SeqCst);
            if used >= self.limit {
                self.refused.fetch_add(1, Ordering::SeqCst);
                return Err(SparqlError::BudgetExhausted { limit: self.limit });
            }
            if self
                .admitted
                .compare_exchange(used, used + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }
}

impl SparqlEndpoint for QueryBudget<'_> {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        self.admit()?;
        self.inner.select(query)
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        self.admit()?;
        self.inner.ask(query)
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        self.inner.keyword_search(keyword, exact)
    }

    fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    fn stats(&self) -> EndpointStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn tracer(&self) -> Option<&re2x_obs::Tracer> {
        self.inner.tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;
    use re2x_sparql::LocalEndpoint;

    fn endpoint() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany .
            ex:o2 ex:dest ex:France .
            ex:Germany ex:label "Germany" .
            "#,
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    #[test]
    fn cuts_off_exactly_at_the_budget() {
        let ep = endpoint();
        let budget = QueryBudget::new(&ep, 3);
        for _ in 0..3 {
            budget
                .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                .expect("within budget");
        }
        let err = budget
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect_err("over budget");
        assert_eq!(err, SparqlError::BudgetExhausted { limit: 3 });
        assert_eq!(budget.admitted(), 3);
        assert_eq!(budget.refused(), 1);
        // the endpoint never saw the refused query
        assert_eq!(ep.stats().selects, 3);
    }

    #[test]
    fn asks_count_and_keyword_searches_pass_through() {
        let ep = endpoint();
        let budget = QueryBudget::new(&ep, 1);
        assert!(budget
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
            .expect("ask"));
        assert!(budget
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
            .is_err());
        // keyword lookups are unbudgeted by design
        assert_eq!(budget.keyword_search("germany", true).len(), 1);
        assert_eq!(ep.stats().keyword_searches, 1);
    }

    #[test]
    fn concurrent_probes_never_exceed_the_limit() {
        let ep = endpoint();
        let budget = QueryBudget::new(&ep, 10);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        let _ = budget.select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }");
                    }
                });
            }
        });
        assert_eq!(budget.admitted(), 10);
        assert_eq!(budget.refused(), 30);
        assert_eq!(ep.stats().selects, 10);
    }
}
