//! Event-bus contract tests: bounded overflow with exact drop accounting,
//! non-blocking producers, and panic isolation between subscribers and
//! the tracer.

use re2x_obs::{BusEvent, EventBus, QueryKind, TraceEvent, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn counter(delta: u64) -> BusEvent {
    BusEvent::Counter {
        name: "c".to_owned(),
        delta,
        at: Duration::from_micros(delta),
    }
}

/// The overflow contract, probed with a gated producer so the interleaving
/// is fully deterministic: the consumer is barred from polling until every
/// publish has happened, so exactly `published - capacity` drops occur,
/// the counter reports exactly that, and the survivors are the newest
/// `capacity` events in publish order.
#[test]
fn gated_producer_overflow_drops_oldest_and_counts_exactly() {
    const CAPACITY: usize = 16;
    const PUBLISHED: u64 = 100;

    let bus = EventBus::new();
    let stream = bus.subscribe(CAPACITY);
    let gate = Arc::new(Barrier::new(2));

    std::thread::scope(|scope| {
        let bus = bus.clone();
        let producer_gate = Arc::clone(&gate);
        scope.spawn(move || {
            for i in 0..PUBLISHED {
                bus.publish(&counter(i));
            }
            producer_gate.wait(); // only now may the consumer look
        });
        gate.wait();
    });

    assert_eq!(
        stream.dropped_events(),
        PUBLISHED - CAPACITY as u64,
        "every overflow increments the counter exactly once"
    );
    let got = stream.poll();
    assert_eq!(got.len(), CAPACITY, "ring holds exactly its capacity");
    let deltas: Vec<u64> = got
        .iter()
        .filter_map(|e| match e {
            BusEvent::Counter { delta, .. } => Some(*delta),
            _ => None,
        })
        .collect();
    let expected: Vec<u64> = (PUBLISHED - CAPACITY as u64..PUBLISHED).collect();
    assert_eq!(
        deltas, expected,
        "oldest dropped, newest kept, order intact"
    );

    // drained: the next poll is empty and nothing further was dropped
    assert!(stream.poll().is_empty());
    assert_eq!(stream.dropped_events(), PUBLISHED - CAPACITY as u64);
}

/// Producers are never blocked by a slow (here: absent) consumer — a
/// publish storm far beyond capacity completes, and the total event count
/// balances exactly: received + dropped = published.
#[test]
fn producers_never_block_and_accounting_balances() {
    const CAPACITY: usize = 32;
    let bus = EventBus::new();
    let stream = bus.subscribe(CAPACITY);
    let published = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let bus = bus.clone();
            let published = Arc::clone(&published);
            scope.spawn(move || {
                for i in 0..500 {
                    bus.publish(&counter(i));
                    published.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let total = published.load(Ordering::Relaxed);
    assert_eq!(total, 2_000, "no publish ever failed or blocked forever");
    let received = stream.poll().len() as u64;
    assert_eq!(
        received + stream.dropped_events(),
        total,
        "every published event was either delivered or counted as dropped"
    );
    assert_eq!(received, CAPACITY as u64, "ring was full at the end");
}

/// A subscriber thread that panics (dropping its stream mid-unwind) must
/// not poison the tracer: other subscribers keep receiving and the
/// tracer's own log keeps growing.
#[test]
fn panicking_subscriber_never_poisons_the_tracer() {
    let tracer = Tracer::enabled();
    let survivor = tracer.subscribe();

    let result = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let doomed = tracer.subscribe();
                drop(tracer.span("before"));
                let seen = doomed.poll();
                assert!(!seen.is_empty(), "subscriber saw the first span");
                panic!("subscriber dies with its stream live");
            })
            .join()
    });
    assert!(
        result.is_err(),
        "the subscriber must actually have panicked"
    );

    // the tracer keeps publishing to the remaining subscriber…
    drop(tracer.span("after"));
    tracer.counter_add("steps", 1);
    let events = survivor.poll();
    assert!(
        events.iter().any(|e| matches!(
            e,
            BusEvent::Trace(TraceEvent::Enter { path, .. }) if path == "after"
        )),
        "survivor still receives spans after the panic"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, BusEvent::Counter { name, .. } if name == "steps")),
        "survivor still receives metric deltas after the panic"
    );

    // …and the archived log, provenance, and metrics are intact
    tracer.record_query(QueryKind::Select, Duration::from_micros(1));
    assert!(tracer.events().len() >= 5, "enter/exit ×2 + query");
    assert_eq!(
        tracer.bus().map(|b| b.subscriber_count()),
        Some(1),
        "the doomed stream unregistered during unwinding"
    );
}
