//! The self-hosting gate as a test: lint the real workspace and assert
//! the invariants `scripts/verify.sh` enforces — no findings outside the
//! checked-in baseline, no stale baseline entries, and an acyclic lock
//! graph over the registered lock set.

use re2x_lint::engine::{apply_baseline, collect_files, lint_files};
use re2x_lint::rules::lock_order::find_cycles;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let files = collect_files(root).expect("workspace sources readable");
    assert!(
        files.len() > 40,
        "expected the whole workspace, got {}",
        files.len()
    );
    let result = lint_files(&files);

    let baseline = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("lint-baseline.txt is checked in");
    let lines: Vec<String> = baseline.lines().map(str::to_owned).collect();
    let outcome = apply_baseline(result.findings, &lines);

    assert!(
        outcome.new_findings.is_empty(),
        "findings outside the baseline:\n{}",
        outcome
            .new_findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "stale baseline entries (violation fixed? prune them): {:?}",
        outcome.stale
    );
}

#[test]
fn panic_freedom_baseline_only_shrinks() {
    // The serve PR burned the debt down from 51 to 36 panic-freedom
    // entries (datagen member lookups, rdf/sparql lexer `peeked`
    // expects); the observability PR took it to 31 (tracer stack slots,
    // session history indexing, shard-merge/partition guards); the
    // vectorized-execution PR took it to 22 (graph.rs remove-path
    // expects, plan_block selection, parser agg-keyword re-probe); the
    // snapshot PR took it to 16 (bootstrap label fallbacks, model/vgraph
    // level-path contracts, sparql total-order and aggregate-projection
    // expects); the dataflow-lint PR took it to 6 (ticket mismatches are
    // `SparqlError::TicketMismatch`, crawl/shard joins contain panics,
    // interner overflow returns `RdfError::TermCapacity`, bootstrap slot
    // and path contracts return errors). This ratchet keeps the ceiling
    // where it landed: new panic sites must be fixed, not baselined.
    let baseline = std::fs::read_to_string(workspace_root().join("lint-baseline.txt"))
        .expect("lint-baseline.txt is checked in");
    let panic_entries = baseline
        .lines()
        .filter(|l| l.starts_with("panic-freedom\t"))
        .count();
    assert!(
        panic_entries <= 6,
        "panic-freedom baseline grew back to {panic_entries} entries (ceiling is 6); \
         fix the panic site instead of re-baselining it"
    );
}

#[test]
fn workspace_lock_graph_is_registered_and_acyclic() {
    let files = collect_files(workspace_root()).expect("workspace sources readable");
    let result = lint_files(&files);

    let mut names: Vec<&str> = result
        .registrations
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    names.sort();
    names.dedup();
    for expected in [
        "obs.metrics",
        "obs.tracer.events",
        "obs.tracer.provenance",
        "sparql.async.shared",
        "sparql.cache.state",
        "sparql.local.stats",
        "sparql.sharded.stats",
    ] {
        assert!(
            names.contains(&expected),
            "lock {expected} missing from the registry: {names:?}"
        );
    }

    let cycles = find_cycles(&result.edges);
    assert!(
        cycles.is_empty(),
        "the workspace lock graph must stay acyclic: {:?}",
        cycles
            .iter()
            .map(|c| c.path.join(" -> "))
            .collect::<Vec<_>>()
    );
}
