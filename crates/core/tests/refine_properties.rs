//! Property-based tests of the subset and similarity refinements over
//! synthetic result tables (no endpoint involved): the threshold
//! arithmetic of Problem 2b and the vector construction of Problem 2c must
//! hold for arbitrary measure distributions.

use re2x_cube::VirtualSchemaGraph;
use re2x_rdf::Graph;
use re2x_sparql::{AggFunc, Order, Query, Solutions, Value};
use re2x_testkit::{check, TestRng};
use re2xolap::refine::{subset, RefinementKind};
use re2xolap::{ExampleBinding, GroupColumn, MeasureColumn, OlapQuery};

/// Builds a one-dimension schema + a query + a synthetic result table with
/// the given measure values; the example is the `example_row`-th member.
fn fixture(
    values: &[u32],
    example_row: usize,
) -> (VirtualSchemaGraph, OlapQuery, Solutions, Graph) {
    let mut schema = VirtualSchemaGraph::new("http://ex/Obs");
    let dim = schema.add_dimension("http://ex/dest", "Destination");
    let measure = schema.add_measure("http://ex/m", "Measure");
    let level = schema.add_level(
        dim,
        vec!["http://ex/dest".into()],
        values.len(),
        vec![],
        "L",
    );
    let mut graph = Graph::new();
    let rows = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let member = graph.intern_iri(format!("http://ex/member{i}"));
            vec![Some(Value::Term(member)), Some(Value::Number(f64::from(v)))]
        })
        .collect();
    let solutions = Solutions {
        vars: vec!["dest".into(), "sum_m".into()],
        rows,
    };
    let query = OlapQuery {
        query: Query::select_all(vec![]),
        group_columns: vec![GroupColumn {
            var: "dest".into(),
            level,
        }],
        measure_columns: vec![MeasureColumn {
            alias: "sum_m".into(),
            measure,
            agg: AggFunc::Sum,
        }],
        example: vec![vec![ExampleBinding {
            keyword: "kw".into(),
            member_iri: format!("http://ex/member{example_row}"),
            label: "kw".into(),
            level,
        }]],
        description: "Q".into(),
    };
    (schema, query, solutions, graph)
}

/// Evaluates a Top-k refinement's threshold against the synthetic table:
/// how many rows would survive the HAVING comparison.
fn surviving(values: &[u32], order: Order, threshold: f64) -> Vec<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| match order {
            Order::Desc => f64::from(v) > threshold,
            Order::Asc => f64::from(v) < threshold,
        })
        .map(|(i, _)| i)
        .collect()
}

/// Draws the shared inputs: 2–39 measure values plus an example row.
fn gen_values_and_example(rng: &mut TestRng) -> (Vec<u32>, usize) {
    let n = rng.gen_range(2usize..40);
    let values = (0..n).map(|_| rng.gen_range(0u32..10_000)).collect();
    let example = rng.gen_range(0usize..n);
    (values, example)
}

/// Top-k: the surviving set has exactly k rows, includes the example,
/// and is extremal (no excluded row beats an included one).
#[test]
fn topk_threshold_is_exact_and_extremal() {
    check("topk_threshold_is_exact_and_extremal", |rng| {
        let (values, example) = gen_values_and_example(rng);
        let (schema, query, solutions, graph) = fixture(&values, example);
        for refinement in subset::topk(&schema, &query, &solutions, &graph) {
            let RefinementKind::TopK { k, order, .. } = refinement.kind else {
                panic!("wrong kind")
            };
            // extract the threshold from the generated HAVING
            let re2x_sparql::Expr::Cmp(_, _, rhs) =
                refinement.query.query.having.as_ref().expect("having")
            else {
                panic!("unexpected having shape")
            };
            let re2x_sparql::Expr::Number(threshold) = **rhs else {
                panic!("numeric threshold")
            };
            let survivors = surviving(&values, order, threshold);
            assert_eq!(survivors.len(), k, "exactly k survive");
            assert!(survivors.contains(&example), "example survives");
            // extremal: every survivor is ≥ (Desc) / ≤ (Asc) every excluded
            for &s in &survivors {
                for (i, &v) in values.iter().enumerate() {
                    if !survivors.contains(&i) {
                        match order {
                            Order::Desc => assert!(values[s] >= v),
                            Order::Asc => assert!(values[s] <= v),
                        }
                    }
                }
            }
        }
    });
}

/// Percentile: every produced interval contains the example's value
/// and respects the interval arithmetic.
#[test]
fn percentile_intervals_contain_the_example() {
    check("percentile_intervals_contain_the_example", |rng| {
        let (values, example) = gen_values_and_example(rng);
        let (schema, query, solutions, graph) = fixture(&values, example);
        let refinements = subset::percentile(
            &schema,
            &query,
            &solutions,
            &graph,
            &subset::DEFAULT_PERCENTILES,
        );
        assert!(
            !refinements.is_empty(),
            "the example always falls in some interval"
        );
        let example_value = f64::from(values[example]);
        for refinement in &refinements {
            let RefinementKind::Percentile {
                lower_pct,
                upper_pct,
                ..
            } = refinement.kind
            else {
                panic!("wrong kind")
            };
            assert!(lower_pct < upper_pct);
            // the generated HAVING is (lo ≤ agg) AND (agg </≤ hi); recheck
            // the example value against the rendered bounds
            let re2x_sparql::Expr::And(lo, hi) =
                refinement.query.query.having.as_ref().expect("having")
            else {
                panic!("unexpected having shape")
            };
            let bound = |e: &re2x_sparql::Expr| -> f64 {
                let re2x_sparql::Expr::Cmp(_, _, rhs) = e else {
                    panic!("cmp")
                };
                let re2x_sparql::Expr::Number(n) = **rhs else {
                    panic!("num")
                };
                n
            };
            let lo = bound(lo);
            let hi = bound(hi);
            assert!(lo <= example_value, "{lo} ≤ {example_value}");
            if upper_pct == 100 {
                assert!(example_value <= hi);
            } else {
                assert!(example_value < hi);
            }
        }
        // intervals are disjoint by construction (shared boundary, strict
        // upper bound): at most one interval per measure column matches a
        // point value — except the topmost which is closed
        assert!(refinements.len() <= 2);
    });
}
