//! Quickstart: example-driven analytics in ~40 lines.
//!
//! Builds a miniature statistical KG from Turtle, bootstraps the schema
//! automatically, and asks RE²xOLAP for the analytical queries behind the
//! single example entity "Germany" — no SPARQL written by hand.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_rdf::{io::parse_turtle, Graph};
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{Session, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tiny statistical KG: asylum applications by destination/origin.
    let mut graph = Graph::new();
    parse_turtle(
        r#"
        @prefix ex: <http://example.org/> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

        ex:Germany rdfs:label "Germany" .
        ex:France  rdfs:label "France" .
        ex:Syria   rdfs:label "Syria" ; ex:inContinent ex:Asia .
        ex:Iraq    rdfs:label "Iraq"  ; ex:inContinent ex:Asia .
        ex:Asia    rdfs:label "Asia" .

        ex:obs1 a ex:Observation ; ex:destination ex:Germany ;
                ex:origin ex:Syria ; ex:applicants 4000 .
        ex:obs2 a ex:Observation ; ex:destination ex:Germany ;
                ex:origin ex:Iraq  ; ex:applicants 2500 .
        ex:obs3 a ex:Observation ; ex:destination ex:France ;
                ex:origin ex:Syria ; ex:applicants 2511 .
        "#,
        &mut graph,
    )?;

    // 2. Serve it through a SPARQL endpoint and discover the schema: the
    //    system is told only the observation class.
    let endpoint = LocalEndpoint::new(graph);
    let report = bootstrap(
        &endpoint,
        &BootstrapConfig::new("http://example.org/Observation"),
    )?;
    let stats = report.schema.stats();
    println!(
        "discovered {} dimensions, {} measure(s), {} levels in {:?}\n",
        stats.dimensions, stats.measures, stats.levels, report.elapsed
    );

    // 3. Reverse engineer analytical queries from one example entity.
    let mut session = Session::new(&endpoint, &report.schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany"])?;
    println!("candidate interpretations for ⟨\"Germany\"⟩:");
    for (i, q) in outcome.queries.iter().enumerate() {
        println!("  [{i}] {}", q.description);
    }

    // 4. Run the first one and show its results.
    let step = session.choose(outcome.queries[0].clone())?;
    println!("\n{}", step.query.sparql());
    println!("\n{}", step.solutions.to_table(endpoint.graph()));
    Ok(())
}
