//! Admission-control regressions: saturated queues reject with a typed
//! error (not a block or a panic), query budgets cut sessions off exactly
//! at the boundary, and graceful shutdown drains every admitted session —
//! all asserted through the server's own obs counters.

use re2x_cube::{bootstrap, BootstrapConfig, VirtualSchemaGraph};
use re2x_obs::label;
use re2x_rdf::{Graph, TermId};
use re2x_serve::{
    run_script, QueryBudget, RoundOp, ServeError, ServerBuilder, SessionScript, TenantSpec,
};
use re2x_sparql::{EndpointStats, LocalEndpoint, Query, Solutions, SparqlEndpoint, SparqlError};
use re2xolap::{RefineOp, SessionConfig};
use std::sync::{Arc, Condvar, Mutex};

fn fixture() -> (Graph, VirtualSchemaGraph) {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    (endpoint.into_graph(), schema)
}

fn script(tenant: &str, rounds: Vec<RoundOp>) -> SessionScript {
    let mut all = vec![RoundOp::Synthesize {
        example: vec!["Germany".to_owned(), "2014".to_owned()],
        pick: 0,
    }];
    all.extend(rounds);
    SessionScript {
        tenant: tenant.to_owned(),
        rounds: all,
    }
}

/// An endpoint that blocks every call until the test releases it, and
/// reports when the first call has entered — giving the queue-full test a
/// deterministic way to pin the single worker.
struct GateEndpoint {
    inner: LocalEndpoint,
    state: Mutex<(bool, bool)>, // (entered, released)
    entered_cv: Condvar,
    release_cv: Condvar,
}

impl GateEndpoint {
    fn new(graph: Graph) -> GateEndpoint {
        GateEndpoint {
            inner: LocalEndpoint::new(graph),
            state: Mutex::new((false, false)),
            entered_cv: Condvar::new(),
            release_cv: Condvar::new(),
        }
    }

    fn pass(&self) {
        let mut state = self.state.lock().expect("gate state");
        state.0 = true;
        self.entered_cv.notify_all();
        while !state.1 {
            state = self.release_cv.wait(state).expect("gate wait");
        }
    }

    fn wait_for_entry(&self) {
        let mut state = self.state.lock().expect("gate state");
        while !state.0 {
            state = self.entered_cv.wait(state).expect("entry wait");
        }
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("gate state");
        state.1 = true;
        self.release_cv.notify_all();
    }
}

impl SparqlEndpoint for GateEndpoint {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        self.pass();
        self.inner.select(query)
    }
    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        self.pass();
        self.inner.ask(query)
    }
    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        self.pass();
        self.inner.keyword_search(keyword, exact)
    }
    fn graph(&self) -> &Graph {
        self.inner.graph()
    }
    fn stats(&self) -> EndpointStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[test]
fn saturated_queue_rejects_with_typed_error_and_counter() {
    let (graph, schema) = fixture();
    let gate = Arc::new(GateEndpoint::new(graph.clone()));
    let server = ServerBuilder::new()
        .workers(1)
        .queue_capacity(2)
        .tenant_stack("gate", Box::new(Arc::clone(&gate)))
        .start(&graph, &schema);

    // the single worker picks this up and blocks inside the endpoint
    let pinned = server.submit(script("gate", vec![])).expect("admitted");
    gate.wait_for_entry();

    // the queue (bound 2) now fills deterministically
    let queued: Vec<_> = (0..2)
        .map(|_| server.submit(script("gate", vec![])).expect("queued"))
        .collect();
    let over = server.submit(script("gate", vec![]));
    assert_eq!(over, Err(ServeError::QueueFull { capacity: 2 }));
    assert_eq!(
        server.metrics().counter(&label(
            "serve.sessions_rejected",
            &[("tenant", "gate"), ("reason", "queue_full")],
        )),
        1
    );

    gate.release();
    server.wait(pinned).expect("pinned session completes");
    for t in queued {
        server.wait(t).expect("queued session completes");
    }
    server.shutdown();
    // nothing beyond the one deliberate overflow was ever rejected
    assert_eq!(
        server
            .metrics()
            .counter(&label("serve.sessions_admitted", &[("tenant", "gate")])),
        3
    );
}

#[test]
fn unknown_tenants_are_rejected_without_enqueueing() {
    let (graph, schema) = fixture();
    let server = ServerBuilder::new()
        .tenant(TenantSpec::new("t0"))
        .start(&graph, &schema);
    let err = server.submit(script("nobody", vec![]));
    assert_eq!(err, Err(ServeError::UnknownTenant("nobody".to_owned())));
    assert_eq!(
        server.metrics().counter(&label(
            "serve.sessions_rejected",
            &[("tenant", "nobody"), ("reason", "unknown_tenant")],
        )),
        1
    );
    assert_eq!(server.tenants(), vec!["t0".to_owned()]);
}

#[test]
fn budget_cuts_off_exactly_at_the_boundary() {
    let (graph, schema) = fixture();
    let work = script(
        "t0",
        vec![
            RoundOp::Refine {
                op: RefineOp::TopK,
                pick: 0,
            },
            RoundOp::Refine {
                op: RefineOp::Disaggregate,
                pick: 0,
            },
        ],
    );

    // measure the script's exact SELECT/ASK demand with a huge budget
    let bare = LocalEndpoint::new(graph.clone());
    let probe = QueryBudget::new(&bare, u64::MAX);
    run_script(&probe, &schema, &work, &SessionConfig::default()).expect("unbudgeted run");
    let demand = probe.admitted();
    assert!(demand > 0, "the probe script must issue queries");

    // a budget of exactly `demand` admits the whole session …
    let server = ServerBuilder::new()
        .tenant(TenantSpec::new("t0"))
        .session_budget(Some(demand))
        .start(&graph, &schema);
    server.run(work.clone()).expect("exact budget suffices");
    server.shutdown();

    // … and one less cuts it off with the typed error
    let server = ServerBuilder::new()
        .tenant(TenantSpec::new("t0"))
        .session_budget(Some(demand - 1))
        .start(&graph, &schema);
    let err = server.run(work).expect_err("one short must exhaust");
    assert!(err.is_budget_exhausted(), "got {err:?}");
    assert_eq!(
        server.metrics().counter(&label(
            "serve.sessions_budget_exhausted",
            &[("tenant", "t0")]
        )),
        1
    );
    assert_eq!(
        server
            .metrics()
            .counter(&label("serve.sessions_completed", &[("tenant", "t0")])),
        0
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_admitted_session() {
    let (graph, schema) = fixture();
    let server = ServerBuilder::new()
        .workers(2)
        .queue_capacity(16)
        .tenant(TenantSpec::new("t0"))
        .start(&graph, &schema);

    let tickets: Vec<_> = (0..6)
        .map(|_| {
            server
                .submit(script("t0", vec![RoundOp::Think { millis: 2 }]))
                .expect("admitted")
        })
        .collect();

    // shutdown blocks until queued + in-flight sessions all complete
    server.shutdown();

    assert_eq!(
        server.submit(script("t0", vec![])),
        Err(ServeError::ShuttingDown),
        "a draining server admits nothing new"
    );

    for t in tickets {
        server
            .wait(t)
            .expect("admitted session completed the drain");
    }

    let m = server.metrics();
    assert_eq!(
        m.counter(&label("serve.sessions_admitted", &[("tenant", "t0")])),
        6
    );
    assert_eq!(
        m.counter(&label("serve.sessions_completed", &[("tenant", "t0")])),
        6
    );
    assert_eq!(
        m.gauge(&label("serve.sessions_active", &[("tenant", "t0")]))
            .unwrap_or(0.0),
        0.0
    );
    assert_eq!(
        m.counter(&label(
            "serve.sessions_rejected",
            &[("tenant", "t0"), ("reason", "shutting_down")],
        )),
        1
    );
}
