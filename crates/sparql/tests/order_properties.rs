//! Property suite: `ORDER BY` must be deterministic under shuffled input
//! row order, including NaN-valued keys.
//!
//! Regression guard for the former `partial_cmp(..).unwrap_or(Equal)`
//! comparator in `Value::compare`, which was non-total once a NaN reached
//! it — `sort_by` output (and thus Top-k/Percentile refinements downstream)
//! became implementation-defined. NaN now has a pinned position: after
//! every finite value ascending, with all NaNs mutually equal.
//!
//! Per-case seeds come from the testkit harness (`RE2X_TEST_SEED` /
//! `RE2X_TEST_CASES` reproduce a failure exactly).

use re2x_rdf::{vocab, Graph, Literal, Term};
use re2x_sparql::{evaluate, parse_query, Solutions};
use re2x_testkit::{check, TestRng};

fn shuffle<T>(rng: &mut TestRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0usize..i + 1);
        items.swap(i, j);
    }
}

/// Builds a graph inserting one `<eN> <http://ex/val> "lexical"^^xsd:double`
/// observation per entry, in the given order.
fn graph_from(entries: &[(String, String)]) -> Graph {
    let mut g = Graph::new();
    for (iri, lexical) in entries {
        g.insert(
            Term::iri(iri),
            Term::iri("http://ex/val"),
            Term::from(Literal::typed(lexical, vocab::xsd::DOUBLE)),
        );
    }
    g
}

/// The `?v` key column of the result as lexical strings (NaN rows all
/// render identically, so this sequence is insertion-order independent
/// even though NaN keys tie with each other).
fn key_column(solutions: &Solutions, graph: &Graph) -> Vec<String> {
    (0..solutions.len())
        .map(|row| {
            solutions
                .value(row, "v")
                .expect("key column bound")
                .string_form(graph)
        })
        .collect()
}

#[test]
fn order_by_is_deterministic_under_shuffled_input_with_nan_keys() {
    check("order_by_shuffled_nan", |rng| {
        // distinct finite values so every non-NaN key is unique, plus a
        // few NaN rows (which compare equal to each other)
        let finite = rng.gen_range(3usize..12);
        let mut entries: Vec<(String, String)> = (0..finite)
            .map(|i| {
                let value = (i as f64) * 1.5 - 4.0 + rng.gen_f64() * 0.5;
                (format!("http://ex/e{i}"), format!("{value}"))
            })
            .collect();
        for j in 0..rng.gen_range(1usize..4) {
            entries.push((format!("http://ex/nan{j}"), "NaN".to_owned()));
        }

        let query =
            parse_query("SELECT ?s ?v WHERE { ?s <http://ex/val> ?v } ORDER BY ?v").expect("parse");
        let reference_graph = graph_from(&entries);
        let reference = evaluate(&reference_graph, &query).expect("evaluate");
        assert_eq!(reference.len(), entries.len());

        let mut shuffled = entries.clone();
        shuffle(rng, &mut shuffled);
        let shuffled_graph = graph_from(&shuffled);
        let sorted = evaluate(&shuffled_graph, &query).expect("evaluate");

        assert_eq!(
            key_column(&sorted, &shuffled_graph),
            key_column(&reference, &reference_graph),
            "ORDER BY key sequence depends on input row order"
        );

        // NaN's pinned position: all NaN keys sort after every finite key
        let keys = key_column(&sorted, &shuffled_graph);
        let first_nan = keys.iter().position(|k| k == "NaN").expect("NaN present");
        assert!(
            keys[first_nan..].iter().all(|k| k == "NaN"),
            "NaN keys must form the tail: {keys:?}"
        );

        // descending flips the pin: NaNs first
        let desc = parse_query("SELECT ?s ?v WHERE { ?s <http://ex/val> ?v } ORDER BY DESC(?v)")
            .expect("parse");
        let desc_keys = key_column(
            &evaluate(&shuffled_graph, &desc).expect("evaluate"),
            &shuffled_graph,
        );
        let nans = keys.len() - first_nan;
        assert!(
            desc_keys[..nans].iter().all(|k| k == "NaN"),
            "DESC must lead with the NaN keys: {desc_keys:?}"
        );
        let mut reversed_finite: Vec<String> = keys[..first_nan].to_vec();
        reversed_finite.reverse();
        assert_eq!(&desc_keys[nans..], &reversed_finite[..]);
    });
}

#[test]
fn order_by_ties_resolve_identically_for_numerically_equal_literals() {
    // "5"^^xsd:integer, "5.0"^^xsd:decimal, "05"^^xsd:integer are one
    // equivalence class for both compare and equals, so ORDER BY treats
    // them as ties and DISTINCT on a computed key collapses them —
    // the comparator and the equality must agree on that class.
    check("order_by_coerced_ties", |rng| {
        let spellings = [
            ("5", vocab::xsd::INTEGER),
            ("5.0", vocab::xsd::DECIMAL),
            ("05", vocab::xsd::INTEGER),
            ("5.00", vocab::xsd::DOUBLE),
        ];
        let mut entries: Vec<(String, (&str, &str))> = spellings
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("http://ex/tie{i}"), s))
            .collect();
        entries.push(("http://ex/low".to_owned(), ("1", vocab::xsd::INTEGER)));
        entries.push(("http://ex/high".to_owned(), ("9", vocab::xsd::INTEGER)));
        shuffle(rng, &mut entries);

        let mut g = Graph::new();
        for (iri, (lexical, datatype)) in &entries {
            g.insert(
                Term::iri(iri),
                Term::iri("http://ex/val"),
                Term::from(Literal::typed(*lexical, *datatype)),
            );
        }
        let query =
            parse_query("SELECT ?s ?v WHERE { ?s <http://ex/val> ?v } ORDER BY ?v").expect("parse");
        let solutions = evaluate(&g, &query).expect("evaluate");
        assert_eq!(solutions.len(), entries.len());
        // the tie class lands contiguously between the two extremes,
        // regardless of insertion order
        let subjects: Vec<String> = (0..solutions.len())
            .map(|row| solutions.value(row, "s").expect("bound").string_form(&g))
            .collect();
        assert_eq!(subjects.first().map(String::as_str), Some("http://ex/low"));
        assert_eq!(subjects.last().map(String::as_str), Some("http://ex/high"));
        assert!(
            subjects[1..subjects.len() - 1]
                .iter()
                .all(|s| s.starts_with("http://ex/tie")),
            "numerically-equal spellings must tie contiguously: {subjects:?}"
        );
    });
}
