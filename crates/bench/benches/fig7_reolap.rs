//! Figure 7a: ReOLAP synthesis time per dataset and input size (1–4
//! example entities).

use re2x_bench::env::{prepare, DatasetKind, Scales};
use re2x_bench::micro::Group;
use re2x_datagen::example_workload_on;
use re2x_sparql::SparqlEndpoint;
use re2xolap::{reolap, ReolapConfig};

fn main() {
    let group = Group::new("fig7a_reolap");
    let scales = Scales::smoke();
    for kind in DatasetKind::ALL {
        let prepared = prepare(kind, &scales, 42);
        let config = ReolapConfig::default();
        for size in [1usize, 2] {
            let workload =
                example_workload_on(prepared.endpoint.graph(), &prepared.dataset, size, 5, 42);
            group.bench(&format!("{}/{size}ex", kind.name()), || {
                for tuple in &workload {
                    let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
                    let _ = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config);
                }
            });
        }
    }
}
