//! Persistent snapshot caching for generated datasets.
//!
//! Generating a paper-scale dataset (millions of observations) costs
//! minutes of RNG-driven graph construction; loading the same graph from a
//! dictionary-encoded snapshot is a single sequential read with no string
//! re-interning. [`load_or_generate`] makes that transparent: it loads a
//! cached snapshot when one exists and is valid for the exact
//! (dataset, observations, seed) triple, and otherwise regenerates the
//! dataset and writes the snapshot for next time.
//!
//! Cache artifacts are *never trusted blindly*: every file embeds the
//! [`snapshot_key`] of the dataset it holds, and a key mismatch (a stale
//! artifact from an older run, a renamed file, a different seed) causes
//! regeneration, not silent reuse. Corrupt or truncated files likewise
//! fall back to regeneration — the cache can only make runs faster, never
//! wrong.

use std::path::{Path, PathBuf};

use re2x_rdf::{Graph, RdfError};

use crate::common::Dataset;
use crate::{dbpedia, eurostat, production, running};

/// Why a cached snapshot could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMiss {
    /// No snapshot file exists at the cache path.
    Absent,
    /// A file exists but failed validation (truncated, corrupt, foreign
    /// format, unreadable); the message is the underlying error.
    Invalid(String),
    /// A structurally valid snapshot holds a different dataset than
    /// requested — a stale artifact that was regenerated, not trusted.
    Stale {
        /// The key this run required.
        expected: String,
        /// The key embedded in the file.
        found: String,
    },
}

/// How [`load_or_generate`] obtained the dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Loaded straight from a valid cached snapshot — no generation ran.
    Loaded,
    /// Generated from scratch. `miss` says why the cache did not serve;
    /// `wrote` whether a fresh snapshot was persisted for next time.
    Generated {
        /// Why the cached artifact (if any) was unusable.
        miss: CacheMiss,
        /// `true` if the regenerated snapshot was written back.
        wrote: bool,
    },
}

impl CacheOutcome {
    /// `true` when the dataset came from the cache.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Loaded)
    }
}

/// The identity a snapshot must be stamped with to serve the given
/// (dataset, observations, seed) request. Embedded in the file at write
/// time and required at load time.
pub fn snapshot_key(name: &str, observations: usize, seed: u64) -> String {
    format!("re2x/dataset/{name}/obs-{observations}/seed-{seed}")
}

/// Canonical cache location for a dataset snapshot below `dir`.
pub fn snapshot_path(dir: &Path, name: &str, observations: usize, seed: u64) -> PathBuf {
    dir.join(format!("{name}-obs{observations}-seed{seed}.snap"))
}

/// Runs the named generator. `None` for unknown names. The running
/// example has no free parameters, so `observations` and `seed` are
/// ignored for it.
pub fn generate_named(name: &str, observations: usize, seed: u64) -> Option<Dataset> {
    match name {
        "eurostat" => Some(eurostat::generate(observations, seed)),
        "production" => Some(production::generate(observations, seed)),
        "dbpedia" => Some(dbpedia::generate(observations, seed)),
        "running-example" | "running" => Some(running::generate()),
        _ => None,
    }
}

/// The named dataset's metadata with an empty graph — what a
/// snapshot-loaded graph is re-attached to. `None` for unknown names.
pub fn describe_named(name: &str, observations: usize) -> Option<Dataset> {
    match name {
        "eurostat" => Some(eurostat::describe(observations)),
        "production" => Some(production::describe(observations)),
        "dbpedia" => Some(dbpedia::describe(observations)),
        "running-example" | "running" => Some(running::describe()),
        _ => None,
    }
}

/// Loads the dataset from its cached snapshot under `dir`, or generates it
/// (writing the snapshot back for next time). Returns `None` only for an
/// unknown dataset name; cache problems of every kind degrade to
/// regeneration and are reported in the [`CacheOutcome`].
pub fn load_or_generate(
    dir: &Path,
    name: &str,
    observations: usize,
    seed: u64,
) -> Option<(Dataset, CacheOutcome)> {
    let key = snapshot_key(name, observations, seed);
    let path = snapshot_path(dir, name, observations, seed);
    let miss = match Graph::load_snapshot(&path, Some(&key)) {
        Ok(graph) => {
            let mut dataset = describe_named(name, observations)?;
            dataset.graph = graph;
            return Some((dataset, CacheOutcome::Loaded));
        }
        Err(RdfError::Io(_)) if !path.exists() => CacheMiss::Absent,
        Err(RdfError::SnapshotKeyMismatch { expected, found }) => {
            CacheMiss::Stale { expected, found }
        }
        Err(err) => CacheMiss::Invalid(err.to_string()),
    };
    let dataset = generate_named(name, observations, seed)?;
    let wrote =
        std::fs::create_dir_all(dir).is_ok() && dataset.graph.write_snapshot(&path, &key).is_ok();
    Some((dataset, CacheOutcome::Generated { miss, wrote }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_dataset_name_is_none() {
        assert!(generate_named("nope", 10, 1).is_none());
        assert!(describe_named("nope", 10).is_none());
        assert!(load_or_generate(Path::new("/tmp"), "nope", 10, 1).is_none());
    }

    #[test]
    fn keys_separate_datasets_scales_and_seeds() {
        let a = snapshot_key("eurostat", 1000, 42);
        assert_ne!(a, snapshot_key("production", 1000, 42));
        assert_ne!(a, snapshot_key("eurostat", 1001, 42));
        assert_ne!(a, snapshot_key("eurostat", 1000, 43));
    }

    #[test]
    fn describe_matches_generate_metadata() {
        for name in ["eurostat", "production", "dbpedia", "running-example"] {
            let generated = generate_named(name, 50, 7).expect("known dataset");
            let described = describe_named(name, generated.observations).expect("known dataset");
            assert_eq!(described.name, generated.name);
            assert_eq!(described.observation_class, generated.observation_class);
            assert_eq!(described.observations, generated.observations);
            assert_eq!(
                described.dimension_predicates,
                generated.dimension_predicates
            );
            assert_eq!(described.rollup_predicates, generated.rollup_predicates);
            assert_eq!(described.label_predicate, generated.label_predicate);
            assert_eq!(described.expected, generated.expected);
            assert!(described.graph.is_empty());
        }
    }
}
